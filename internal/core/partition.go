package core

// This file is the core half of live shard migration (internal/shard):
// the optional state-machine capability to export, import and drop the
// rows owned by a key predicate, plus the ordered meta-actions the
// migration protocol submits through the normal consensus path. Keyed
// snapshot transfer reuses the checkpoint machinery — an export is a
// filtered snapshot, an import travels the ordered log like any action
// (so every destination replica applies it identically), and the
// command-size model charges the transfer to the network and WAL exactly
// like a checkpoint of the moved bytes.

// PartitionedMachine is the optional StateMachine capability live
// migration needs. A machine that implements it can emit only the rows it
// is losing (a keyed snapshot), merge such a snapshot in, and drop moved
// rows after cutover.
//
// ImportOwned MUST be an idempotent keyed upsert: the migration driver
// retries imports whose completion it could not observe (e.g. the
// submission target crashed mid-handoff), so the same payload may be
// ordered and applied more than once. Map-set semantics plus
// max-monotonic ID counters satisfy this naturally.
type PartitionedMachine interface {
	StateMachine

	// ExportOwned returns a deep-copied snapshot of the rows whose key
	// satisfies owned, plus its nominal serialized size in bytes (the
	// quantity the transfer is charged as).
	ExportOwned(owned func(key string) bool) (data any, size int64)

	// ImportOwned merges an ExportOwned payload into the state.
	// Idempotent (see above).
	ImportOwned(data any)

	// DropOwned removes the rows whose key satisfies owned (the source
	// side's post-cutover cleanup). Idempotent.
	DropOwned(owned func(key string) bool)
}

// Noop is an ordered barrier: it is totally ordered like any action but
// applied without touching the state machine. The migration protocol uses
// it to drain a group — once a Noop submitted after a routing freeze has
// applied, every previously submitted action has too.
type Noop struct{}

// PartitionImport carries a keyed snapshot into the destination group's
// ordered log. Every replica of the group applies it at the same log
// position, so the imported rows join the replicated state exactly like
// rows written by ordered actions.
//
// The replica applies at most one import per (Epoch, Source): the
// migration driver's retry sweep may get several copies ordered (a slow
// or recovering proposer can commit a stale duplicate arbitrarily late),
// and a late copy applied after cutover would overwrite rows that
// post-cutover writes already advanced. The dedup set travels with the
// application checkpoint, so replay and recovery reproduce it exactly.
type PartitionImport struct {
	// Epoch is the routing epoch this import installs.
	Epoch int64

	// Source is the group the payload was exported from; (Epoch, Source)
	// identifies the transfer for the at-most-once guard.
	Source int

	// Data is the ExportOwned payload.
	Data any

	// Size is the payload's nominal serialized size; the consensus
	// command-size model charges the WAL and network with it.
	Size int64
}

// PartitionDrop removes moved rows on the source group after cutover. The
// predicate is carried in-memory like snapshot payloads are; a networked
// deployment would ship the moved slice set and rebuild it.
type PartitionDrop struct {
	// Epoch is the routing epoch whose cutover this drop cleans up
	// after (diagnostics).
	Epoch int64

	// Owned selects the rows to remove.
	Owned func(key string) bool
}

// importKey identifies one keyed-snapshot transfer for the at-most-once
// import guard.
type importKey struct {
	Epoch  int64
	Source int
}

// executeAction applies one ordered action: migration meta-actions are
// handled by the replica itself (on machines without the partition
// capability they degrade to ordered no-ops), everything else goes to the
// state machine. All replicas see the same log, so the import dedup set
// evolves identically everywhere.
func (r *Replica) executeAction(action any) any {
	switch a := action.(type) {
	case Noop:
		return nil
	case TxnPrepare:
		return r.execTxnPrepare(a)
	case TxnCommit:
		return r.execTxnOutcome(a.ID, true)
	case TxnAbort:
		return r.execTxnOutcome(a.ID, false)
	case TxnDecision:
		return r.execTxnDecision(a)
	case PartitionImport:
		key := importKey{Epoch: a.Epoch, Source: a.Source}
		if r.imported[key] {
			return nil // stale duplicate of an applied transfer
		}
		if pm, ok := r.sm.(PartitionedMachine); ok {
			pm.ImportOwned(a.Data)
		}
		if r.imported == nil {
			r.imported = make(map[importKey]bool)
		}
		r.imported[key] = true
		return nil
	case PartitionDrop:
		// Drops need no guard: post-cutover the source receives no new
		// writes to moved keys, so a late duplicate finds nothing new.
		if pm, ok := r.sm.(PartitionedMachine); ok {
			pm.DropOwned(a.Owned)
		}
		// A wholesale deletion cannot be expressed as a row-upsert delta
		// layer: truncate the delta chain at the next checkpoint (fold
		// into a fresh base) so dropped rows can never resurrect from a
		// stale layer on recovery. Until then, recovery replays this
		// drop from the retained log suffix. Machines track this
		// themselves too (SnapshotDelta must fail after DropOwned); the
		// replica-level flag is the belt to that suspender.
		r.forceBase = true
		return nil
	default:
		return r.sm.Execute(action)
	}
}

// copyImported snapshots the dedup set for a checkpoint.
func (r *Replica) copyImported() map[importKey]bool {
	if len(r.imported) == 0 {
		return nil
	}
	cp := make(map[importKey]bool, len(r.imported))
	for k := range r.imported {
		cp[k] = true
	}
	return cp
}
