package paxos

import (
	"testing"
	"testing/quick"

	"robuststore/internal/env"
)

func TestQuorumSizes(t *testing.T) {
	// Paper §2: fast quorum ⌈3N/4⌉, classic ⌊N/2⌋+1.
	cases := []struct {
		n             int
		classic, fast int
	}{
		{3, 2, 3},
		{4, 3, 3},
		{5, 3, 4},
		{7, 4, 6},
		{8, 5, 6},
		{12, 7, 9},
	}
	for _, tc := range cases {
		if got := ClassicQuorum(tc.n); got != tc.classic {
			t.Errorf("ClassicQuorum(%d) = %d, want %d", tc.n, got, tc.classic)
		}
		if got := FastQuorum(tc.n); got != tc.fast {
			t.Errorf("FastQuorum(%d) = %d, want %d", tc.n, got, tc.fast)
		}
	}
}

// TestFastQuorumRequirement verifies Lamport's Fast Paxos quorum
// requirement for every cluster size we support: any classic quorum must
// intersect the intersection of any two fast quorums.
func TestFastQuorumRequirement(t *testing.T) {
	for n := 3; n <= 16; n++ {
		q := ClassicQuorum(n)
		f := FastQuorum(n)
		// Worst case |Q ∩ R1 ∩ R2| ≥ q + 2f - 2n.
		if q+2*f-2*n < 1 {
			t.Errorf("n=%d: quorum requirement violated (q=%d f=%d)", n, q, f)
		}
		// And fast quorums are at least classic quorums.
		if f < q {
			t.Errorf("n=%d: fast quorum smaller than classic", n)
		}
	}
}

func TestBallotOwnerRoundRobin(t *testing.T) {
	err := quick.Check(func(seqRaw uint32, nRaw uint8) bool {
		n := int(nRaw%15) + 1
		seq := int64(seqRaw)
		b := Ballot{Seq: seq}
		owner := b.Owner(n)
		return owner == env.NodeID(seq%int64(n))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ballotNone.Owner(5) != -1 {
		t.Error("nil ballot must have no owner")
	}
}

func TestNextOwnedBallot(t *testing.T) {
	err := quick.Check(func(afterRaw uint32, meRaw, nRaw uint8) bool {
		n := int(nRaw%15) + 1
		me := env.NodeID(int(meRaw) % n)
		after := int64(afterRaw)
		b := nextOwnedBallot(after, me, n)
		if b <= after {
			return false
		}
		if b-after > int64(n) {
			return false // must be the smallest such ballot
		}
		return Ballot{Seq: b}.Owner(n) == me
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBallotOrdering(t *testing.T) {
	a := Ballot{Seq: 3}
	b := Ballot{Seq: 7, Fast: true}
	if !a.Less(b) || b.Less(a) || !a.LessEq(a) {
		t.Error("ballot ordering broken")
	}
	if a.String() != "3c" || b.String() != "7f" {
		t.Errorf("ballot strings: %s %s", a, b)
	}
}

func TestSelectValueClassicMandatory(t *testing.T) {
	v := Value{ID: ValueID{Node: 1, Seq: 5}}
	reports := []acceptedInfo{
		{Inst: 1, B: Ballot{Seq: 2}, V: Value{ID: ValueID{Node: 0, Seq: 1}}},
		{Inst: 1, B: Ballot{Seq: 7}, V: v}, // highest, classic
	}
	got, found := selectValue(reports, 3, 5)
	if !found || got.ID != v.ID {
		t.Fatalf("selectValue = %+v found=%v, want the ballot-7 value", got, found)
	}
}

func TestSelectValueFastThreshold(t *testing.T) {
	// n=5, promise quorum q=3 → threshold q+f-n = 3+4-5 = 2 votes.
	fast := Ballot{Seq: 10, Fast: true}
	va := Value{ID: ValueID{Node: 0, Seq: 1}}
	vb := Value{ID: ValueID{Node: 1, Seq: 1}}
	reports := []acceptedInfo{
		{Inst: 1, B: fast, V: va},
		{Inst: 1, B: fast, V: va},
		{Inst: 1, B: fast, V: vb},
	}
	got, found := selectValue(reports, 3, 5)
	if !found || got.ID != va.ID {
		t.Fatalf("va has 2 ≥ threshold votes and must be selected; got %+v", got)
	}

	// With one vote each, nothing is choosable: free choice, but it
	// must still return one of the reported values for progress.
	reports = reports[:2]
	reports[1].V = vb
	got, found = selectValue(reports, 3, 5)
	if !found || (got.ID != va.ID && got.ID != vb.ID) {
		t.Fatalf("free choice must pick a reported value, got %+v", got)
	}
}

func TestSelectValueNoReports(t *testing.T) {
	if _, found := selectValue(nil, 3, 5); found {
		t.Fatal("no reports must mean free choice (found=false)")
	}
}

// TestSelectValueNeverInventsValues: whatever the reports, the selected
// value is one of the reported ones.
func TestSelectValueNeverInventsValues(t *testing.T) {
	err := quick.Check(func(votes []uint8) bool {
		if len(votes) == 0 || len(votes) > 8 {
			return true
		}
		fast := Ballot{Seq: 4, Fast: true}
		var reports []acceptedInfo
		ids := make(map[ValueID]bool)
		for i, v := range votes {
			id := ValueID{Node: env.NodeID(v % 3), Seq: int64(v % 5)}
			reports = append(reports, acceptedInfo{
				Inst: 1, B: fast, V: Value{ID: id},
			})
			ids[id] = true
			_ = i
		}
		got, found := selectValue(reports, len(reports), 8)
		return !found || ids[got.ID]
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestSelectValueUniqueChoosable: at most one value can meet the
// threshold, so selection is deterministic whenever a choosable value
// exists (safety of coordinated recovery).
func TestSelectValueUniqueChoosable(t *testing.T) {
	for n := 4; n <= 12; n++ {
		q := ClassicQuorum(n)
		threshold := q + FastQuorum(n) - n
		// Two distinct values cannot both reach the threshold within q
		// reports.
		if 2*threshold <= q {
			t.Errorf("n=%d: two values could both be choosable (threshold %d, q %d)",
				n, threshold, q)
		}
	}
}

func TestDedupSet(t *testing.T) {
	d := &dedupSet{over: make(map[int64]bool)}
	if !d.add(1) || d.add(1) {
		t.Fatal("basic add/dup")
	}
	if !d.add(3) {
		t.Fatal("gap add")
	}
	if d.base != 1 {
		t.Fatalf("base = %d, want 1", d.base)
	}
	if !d.add(2) {
		t.Fatal("fill gap")
	}
	if d.base != 3 || len(d.over) != 0 {
		t.Fatalf("base = %d over = %v, want compacted to 3", d.base, d.over)
	}
	if !d.has(1) || !d.has(3) || d.has(4) {
		t.Fatal("has() wrong")
	}
}

// TestDedupSetProperty: add returns true exactly once per sequence and
// has() reflects membership, in any insertion order.
func TestDedupSetProperty(t *testing.T) {
	err := quick.Check(func(seqs []uint8) bool {
		d := &dedupSet{over: make(map[int64]bool)}
		seen := make(map[int64]bool)
		for _, sRaw := range seqs {
			s := int64(sRaw%32) + 1
			fresh := d.add(s)
			if fresh == seen[s] {
				return false // added twice or rejected first time
			}
			seen[s] = true
		}
		for s := int64(1); s <= 32; s++ {
			if d.has(s) != seen[s] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWireSizesPositive(t *testing.T) {
	v := Value{ID: ValueID{Node: 1, Seq: 2}, Size: 100}
	msgs := []interface{ WireSize() int64 }{
		prepareMsg{}, promiseMsg{Accepted: []acceptedInfo{{V: v}}},
		nackMsg{}, acceptMsg{V: v}, acceptedMsg{V: v}, chosenMsg{V: v},
		anyMsg{}, fastProposeMsg{V: v}, forwardMsg{V: v},
		recQueryMsg{}, recInfoMsg{V: v}, pingMsg{},
		catchUpReqMsg{}, catchUpReplyMsg{Entries: []chosenEntry{{V: v}}},
	}
	for _, m := range msgs {
		if m.WireSize() <= 0 {
			t.Errorf("%T has non-positive wire size", m)
		}
	}
	withVotes := promiseMsg{Accepted: []acceptedInfo{{V: v}}}
	if withVotes.WireSize() <= (prepareMsg{}).WireSize() {
		t.Error("promise with votes must cost more than bare prepare")
	}
}
