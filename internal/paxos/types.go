// Package paxos implements the consensus core of Treplica (paper §2): a
// multi-decree Paxos engine with an optional Fast Paxos mode, providing a
// totally ordered, durable log of command batches to the layer above
// (internal/core's asynchronous persistent queue).
//
// Protocol summary. Each log instance (slot) is decided by Paxos. Ballots
// are owned round-robin by node index; the owner of the highest ballot acts
// as leader/coordinator. A leader runs phase 1 once over the open instance
// range (multi-Paxos). In classic mode, proposers forward command batches
// to the leader, which assigns instances and runs phase 2 with majority
// quorums. In fast mode — enabled while at least ⌈3N/4⌉ replicas are alive,
// per the paper's Treplica configuration — the coordinator issues an "any"
// message and proposers broadcast batches directly to acceptors, which
// self-assign instances; the coordinator detects a fast quorum (⌈3N/4⌉
// matching votes) or resolves collisions by coordinated recovery with the
// canonical Fast Paxos value-selection rule. Below a majority of live
// replicas the engine blocks, exactly as §2 describes.
//
// Durability: acceptors persist promises and accepts before replying, so a
// crashed replica rejoins with its consensus state intact (its application
// state is recovered by internal/core from a checkpoint plus the learned
// log suffix).
package paxos

import (
	"fmt"

	"robuststore/internal/env"
)

// InstanceID identifies a slot of the replicated log.
type InstanceID int64

// Ballot identifies a round of consensus. Seq orders ballots totally;
// ownership is round-robin (owner = Seq mod N). Fast marks a fast round:
// its phase-2 quorum is ⌈3N/4⌉ instead of a majority, and acceptors may
// accept proposer values directly. The owner fixes the Fast bit when it
// first uses the ballot, so a given Seq is never used both ways.
type Ballot struct {
	Seq  int64
	Fast bool
}

// ballotNone sorts below every real ballot.
var ballotNone = Ballot{Seq: -1}

// Less orders ballots by sequence number.
func (b Ballot) Less(o Ballot) bool { return b.Seq < o.Seq }

// LessEq reports b.Seq <= o.Seq.
func (b Ballot) LessEq(o Ballot) bool { return b.Seq <= o.Seq }

// Owner returns the node index owning this ballot in a cluster of n nodes.
func (b Ballot) Owner(n int) env.NodeID {
	if b.Seq < 0 {
		return -1
	}
	return env.NodeID(b.Seq % int64(n))
}

// String implements fmt.Stringer.
func (b Ballot) String() string {
	kind := "c"
	if b.Fast {
		kind = "f"
	}
	return fmt.Sprintf("%d%s", b.Seq, kind)
}

// nextOwnedBallot returns the smallest ballot sequence strictly greater
// than after that is owned by node me in a cluster of n nodes.
func nextOwnedBallot(after int64, me env.NodeID, n int) int64 {
	b := after + 1
	shift := (int64(me) - b%int64(n) + int64(n)) % int64(n)
	return b + shift
}

// ClassicQuorum returns the majority quorum size ⌊N/2⌋+1.
func ClassicQuorum(n int) int { return n/2 + 1 }

// FastQuorum returns the fast quorum size ⌈3N/4⌉ used by Treplica
// (paper §2).
func FastQuorum(n int) int { return (3*n + 3) / 4 }

// quorum returns the phase-2 quorum size for ballot b.
func quorum(b Ballot, n int) int {
	if b.Fast {
		return FastQuorum(n)
	}
	return ClassicQuorum(n)
}

// ValueID identifies a proposed value (a batch of commands) uniquely
// across the cluster: the proposing node, its incarnation epoch, and a
// node-local sequence number. Delivery deduplicates on it, so a value
// chosen in two instances (possible under fast-mode collisions and
// retries) is applied once. The epoch — the node's boot timestamp —
// guarantees a restarted replica never reuses the identity of a value
// proposed by an earlier incarnation.
type ValueID struct {
	Node  env.NodeID
	Epoch int64
	Seq   int64
}

// Value is the unit of agreement: a batch of opaque application commands.
type Value struct {
	ID   ValueID
	Cmds []any
	Size int64 // modeled serialized size in bytes
	NoOp bool  // gap filler; carries no commands
}

// noOpValue builds a no-op filler value attributed to node me.
func noOpValue(me env.NodeID, epoch, seq int64) Value {
	return Value{ID: ValueID{Node: me, Epoch: epoch, Seq: -seq - 1}, NoOp: true, Size: 32}
}

// acceptedInfo reports an acceptor's vote for one instance.
type acceptedInfo struct {
	Inst InstanceID
	B    Ballot
	V    Value
}

// chosenEntry is a decided instance, used in catch-up transfers.
type chosenEntry struct {
	Inst InstanceID
	V    Value
}

// --- Messages ---------------------------------------------------------
//
// All messages implement WireSize so the simulator can charge network
// bandwidth; sizes model a compact binary encoding.

const msgOverhead = 48

// prepareMsg is phase 1a for all instances >= From.
type prepareMsg struct {
	B    Ballot
	From InstanceID
}

func (m prepareMsg) WireSize() int64 { return msgOverhead }

// promiseMsg is phase 1b: a promise for B plus every vote at instances
// >= the prepare's From.
type promiseMsg struct {
	B        Ballot
	From     InstanceID
	Accepted []acceptedInfo
}

func (m promiseMsg) WireSize() int64 {
	s := int64(msgOverhead)
	for _, a := range m.Accepted {
		s += 24 + a.V.Size
	}
	return s
}

// nackMsg tells a proposer/leader its ballot was superseded.
type nackMsg struct {
	Promised Ballot
}

func (m nackMsg) WireSize() int64 { return msgOverhead }

// acceptMsg is phase 2a for one instance.
type acceptMsg struct {
	B    Ballot
	Inst InstanceID
	V    Value
}

func (m acceptMsg) WireSize() int64 { return msgOverhead + m.V.Size }

// acceptedMsg is phase 2b, sent to the ballot owner (coordinator).
type acceptedMsg struct {
	B    Ballot
	Inst InstanceID
	V    Value
}

func (m acceptedMsg) WireSize() int64 { return msgOverhead + m.V.Size }

// chosenMsg announces a decided instance to all learners.
type chosenMsg struct {
	Inst InstanceID
	V    Value
}

func (m chosenMsg) WireSize() int64 { return msgOverhead + m.V.Size }

// anyMsg opens fast self-assignment in ballot B for instances >= From
// (Fast Paxos phase 2a "any").
type anyMsg struct {
	B    Ballot
	From InstanceID
}

func (m anyMsg) WireSize() int64 { return msgOverhead }

// fastProposeMsg carries a proposer value directly to acceptors during a
// fast round.
type fastProposeMsg struct {
	V Value
}

func (m fastProposeMsg) WireSize() int64 { return msgOverhead + m.V.Size }

// forwardMsg routes a proposer value to the leader in classic mode.
type forwardMsg struct {
	V Value
}

func (m forwardMsg) WireSize() int64 { return msgOverhead + m.V.Size }

// recQueryMsg is a per-instance phase 1a used for coordinated recovery of
// a collided or stalled fast instance.
type recQueryMsg struct {
	B    Ballot
	Inst InstanceID
}

func (m recQueryMsg) WireSize() int64 { return msgOverhead }

// recInfoMsg is the per-instance phase 1b reply.
type recInfoMsg struct {
	B     Ballot
	Inst  InstanceID
	Voted bool
	VB    Ballot
	V     Value
}

func (m recInfoMsg) WireSize() int64 { return msgOverhead + m.V.Size }

// pingMsg is the failure-detector heartbeat. Leaders piggyback their
// first-unchosen watermark so lagging learners trigger catch-up.
type pingMsg struct {
	B             Ballot // highest ballot the sender has seen
	Leader        bool   // sender believes it is the leader of B
	FirstUnchosen InstanceID
}

func (m pingMsg) WireSize() int64 { return msgOverhead }

// catchUpReqMsg asks a peer for chosen entries starting at From.
type catchUpReqMsg struct {
	From InstanceID
	Max  int
}

func (m catchUpReqMsg) WireSize() int64 { return msgOverhead }

// catchUpReplyMsg returns chosen entries. FirstAvail reports the oldest
// entry the sender still retains; if it is greater than the request's
// From, the requester cannot re-synchronize from the log alone and needs a
// state snapshot (handled by internal/core).
type catchUpReplyMsg struct {
	Entries    []chosenEntry
	FirstAvail InstanceID
	LastKnown  InstanceID
}

func (m catchUpReplyMsg) WireSize() int64 {
	s := int64(msgOverhead)
	for _, e := range m.Entries {
		s += 16 + e.V.Size
	}
	return s
}

// --- Durable records ---------------------------------------------------

// promiseRec persists a global promise.
type promiseRec struct {
	B Ballot
}

// acceptRec persists a vote.
type acceptRec struct {
	Inst InstanceID
	B    Ballot
	V    Value
}

// instPromiseRec persists a per-instance promise (coordinated recovery).
type instPromiseRec struct {
	Inst InstanceID
	B    Ballot
}

// compactRec is a compaction barrier: it snapshots the acceptor state for
// open instances so everything before it can be truncated.
type compactRec struct {
	Floor        InstanceID // instances below are covered by the app checkpoint
	Promised     Ballot
	InstPromised map[InstanceID]Ballot
	Accepted     []acceptedInfo
}
