package paxos

import (
	"robuststore/internal/detsort"
	"robuststore/internal/env"
)

// This file implements the acceptor role: durable promises and votes.
// Every state change is persisted to the WAL before the corresponding
// reply is sent, so a crashed acceptor rejoins without ever contradicting
// its earlier votes.

// effPromised returns the effective promise for an instance: the global
// range promise combined with any per-instance promise made during
// coordinated recovery.
func (en *Engine) effPromised(inst InstanceID) Ballot {
	p := en.promised
	if ip, ok := en.instPromised[inst]; ok && p.Less(ip) {
		p = ip
	}
	return p
}

func (en *Engine) onPrepare(from env.NodeID, m prepareMsg) {
	if !en.booted {
		return
	}
	en.noteBallot(m.B)
	if !en.promised.Less(m.B) {
		en.e.Send(from, nackMsg{Promised: en.promised})
		return
	}
	en.promised = m.B
	reply := promiseMsg{B: m.B, From: m.From}
	// Sorted export: the promise's accepted list is network-visible, and
	// map order would make the same acceptor state produce different
	// message bytes on every run (detorder invariant).
	for _, inst := range detsort.Keys(en.accepted) {
		if inst >= m.From {
			reply.Accepted = append(reply.Accepted, en.accepted[inst])
		}
	}
	en.appendRecord(env.Record{Kind: "promise", Data: promiseRec{B: m.B}, Size: 32},
		func(error) { en.e.Send(from, reply) })
}

func (en *Engine) onAccept(from env.NodeID, m acceptMsg) {
	if !en.booted {
		return
	}
	en.noteBallot(m.B)
	if m.Inst < en.retainedFrom {
		return // compacted away; the value was long since chosen
	}
	eff := en.effPromised(m.Inst)
	if m.B.Less(eff) {
		en.e.Send(from, nackMsg{Promised: eff})
		return
	}
	if cur, ok := en.accepted[m.Inst]; ok {
		if m.B.Less(cur.B) {
			return
		}
		if cur.B == m.B && cur.V.ID != m.V.ID {
			// One vote per ballot per instance: never overwrite a
			// same-ballot vote with a different value (fast-round
			// safety).
			return
		}
	}
	en.vote(m.Inst, m.B, m.V)
}

// vote durably accepts (b, v) at inst and acknowledges to the ballot
// owner (the coordinator counts phase-2b messages).
func (en *Engine) vote(inst InstanceID, b Ballot, v Value) {
	en.accepted[inst] = acceptedInfo{Inst: inst, B: b, V: v}
	if b.Less(en.instPromised[inst]) {
		// Unreachable given the caller's checks; keep the invariant
		// explicit.
		return
	}
	en.instPromised[inst] = b
	if inst >= en.nextFree {
		en.nextFree = inst + 1
	}
	coordinator := en.owner(b)
	en.appendRecord(env.Record{Kind: "accept", Data: acceptRec{Inst: inst, B: b, V: v}, Size: 32 + v.Size},
		func(error) { en.e.Send(coordinator, acceptedMsg{B: b, Inst: inst, V: v}) })
}

// onAny opens fast self-assignment: the coordinator of fast ballot m.B
// allows acceptors to vote for proposer values at any free instance
// >= m.From (Fast Paxos phase 2a "any").
func (en *Engine) onAny(from env.NodeID, m anyMsg) {
	if !en.booted || !m.B.Fast {
		return
	}
	en.noteBallot(m.B)
	if en.promised.Less(m.B) {
		// We missed the prepare (e.g. we were down); adopt the promise
		// now.
		en.promised = m.B
		en.appendRecord(env.Record{Kind: "promise", Data: promiseRec{B: m.B}, Size: 32}, nil)
	}
	if m.B.Less(en.promised) {
		return // a higher ballot exists; this fast round is dead
	}
	en.fastBallot = m.B
	en.fastFrom = m.From
	if en.nextFree < m.From {
		en.nextFree = m.From
	}
	if en.curBallot.Less(m.B) {
		en.adoptBallot(m.B)
	}
}

// onFastPropose handles a proposer value during a fast round: the
// acceptor assigns it to its next free instance and votes.
func (en *Engine) onFastPropose(from env.NodeID, m fastProposeMsg) {
	if !en.booted {
		return
	}
	fb := en.fastBallot
	if fb.Seq < 0 {
		return // no fast round opened here yet; the proposer will retry
	}
	if fb.Less(en.promised) {
		// The fast round was superseded by a higher promise. Unlike the
		// classic phase-2 path there is no per-message nack here, so a
		// coordinator whose round died this way would never learn it —
		// tell it, so it stands down and a live ballot can emerge. (The
		// stale-leader-rejoin fix is two-sided; BugStaleLeaderRejoin
		// reverts this half too, restoring the pre-fix engine.)
		if c := en.owner(fb); c >= 0 && c != en.me && !BugStaleLeaderRejoin {
			en.e.Send(c, nackMsg{Promised: en.promised})
		}
		return
	}
	if en.isDelivered(m.V.ID) {
		return // already applied everywhere we know of
	}
	// Skip instances that are taken, decided, or promised to a higher
	// ballot. Starting past the cluster-wide decided watermark keeps
	// concurrently proposing replicas roughly aligned and collisions
	// rare.
	if en.nextFree <= en.maxKnown {
		en.nextFree = en.maxKnown + 1
	}
	for {
		if en.nextFree < en.fastFrom {
			en.nextFree = en.fastFrom
		}
		inst := en.nextFree
		_, taken := en.accepted[inst]
		_, decided := en.chosen[inst]
		if !taken && !decided && !fb.Less(en.effPromised(inst)) {
			en.vote(inst, fb, m.V)
			return
		}
		en.nextFree++
	}
}

// onRecQuery is the per-instance phase 1a of coordinated recovery: promise
// ballot m.B for this instance only and report our vote.
func (en *Engine) onRecQuery(from env.NodeID, m recQueryMsg) {
	if !en.booted {
		return
	}
	en.noteBallot(m.B)
	if m.Inst < en.retainedFrom {
		return
	}
	eff := en.effPromised(m.Inst)
	if m.B.Less(eff) {
		en.e.Send(from, nackMsg{Promised: eff})
		return
	}
	reply := recInfoMsg{B: m.B, Inst: m.Inst}
	if a, ok := en.accepted[m.Inst]; ok {
		reply.Voted = true
		reply.VB = a.B
		reply.V = a.V
	}
	if eff.Less(m.B) {
		en.instPromised[m.Inst] = m.B
		en.appendRecord(env.Record{Kind: "instpromise", Data: instPromiseRec{Inst: m.Inst, B: m.B}, Size: 32},
			func(error) { en.e.Send(from, reply) })
		return
	}
	// Duplicate query at the already-promised ballot: reply directly.
	en.e.Send(from, reply)
}
