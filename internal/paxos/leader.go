package paxos

import (
	"sort"
	"time"

	"robuststore/internal/detsort"
	"robuststore/internal/env"
)

// This file implements the leader/coordinator role: phase 1 over the open
// instance range, classic phase 2, fast-round vote counting, collision
// detection and coordinated recovery, and gap repair.

type leaderState struct {
	b           Ballot
	startedAt   time.Time
	established bool
	prepFrom    InstanceID
	promises    map[env.NodeID]promiseMsg

	nextInstance InstanceID
	anySent      bool

	inflight   map[InstanceID]*proposal // phase 2 in progress (classic or recovery)
	inflightID map[ValueID]InstanceID
	fastVotes  map[InstanceID]*voteSet
	recs       map[InstanceID]*recState
	recSeq     int64
	openSince  map[InstanceID]time.Time // when a gap instance was first noticed
	lastModeAt time.Time
	maxVote    InstanceID
}

type proposal struct {
	b        Ballot
	inst     InstanceID
	v        Value
	acks     map[env.NodeID]bool
	lastSent time.Time
}

type voteSet struct {
	votes   map[env.NodeID]ValueID
	values  map[ValueID]Value
	firstAt time.Time
}

type recState struct {
	b        Ballot
	replies  map[env.NodeID]recInfoMsg
	started  time.Time
	proposed bool
}

// valueIDLess orders value ids (node, epoch, seq) for deterministic
// tie-breaking.
func valueIDLess(a, b ValueID) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	return a.Seq < b.Seq
}

// onDecided clears leader bookkeeping for a decided instance.
func (ls *leaderState) onDecided(inst InstanceID) {
	if p, ok := ls.inflight[inst]; ok {
		delete(ls.inflightID, p.v.ID)
	}
	delete(ls.inflight, inst)
	delete(ls.fastVotes, inst)
	delete(ls.recs, inst)
	delete(ls.openSince, inst)
	if ls.nextInstance <= inst {
		ls.nextInstance = inst + 1
	}
}

// BugStaleLeaderRejoin, when true, reverts the stale-leader-rejoin fix
// (both halves: the bid no longer claims curBallot locally, and acceptors
// no longer nack the coordinator of a superseded fast round),
// reintroducing the livelock the partition faultloads once exposed. It exists only as a
// known-bad toggle for the generative fault search: a hunt against a
// build with this set must find the wedge, shrink the schedule and pin
// it — the test proving the search harness catches real regressions.
// Never set outside tests.
var BugStaleLeaderRejoin bool

// startPrepare begins a leadership bid with a fresh ballot. The ballot is
// fast when Fast Paxos is enabled and at least ⌈3N/4⌉ replicas look alive,
// classic otherwise — the Treplica mode rule of §2.
func (en *Engine) startPrepare() {
	seq := nextOwnedBallot(en.maxBallotSeq, env.NodeID(en.myIdx), en.n)
	fast := en.cfg.FastEnabled && en.aliveCount() >= FastQuorum(en.n)
	b := Ballot{Seq: seq, Fast: fast}
	en.noteBallot(b)
	// Our own bid is the highest leadership ballot we have seen: claim it
	// locally. Without this, a heartbeat from the OLD leader — at a
	// ballot between our stale curBallot and our bid — would "adopt" that
	// older leadership and nil the bid just as the acceptors promise it,
	// leaving the cluster promised to a ballot nobody owns (the
	// stale-leader-rejoin livelock the partition faultloads exposed:
	// every fast proposal is then silently dropped forever).
	if !BugStaleLeaderRejoin {
		en.curBallot = b
	}
	en.leader = &leaderState{
		b:          b,
		startedAt:  en.e.Now(),
		prepFrom:   en.firstUnchosen,
		promises:   make(map[env.NodeID]promiseMsg),
		inflight:   make(map[InstanceID]*proposal),
		inflightID: make(map[ValueID]InstanceID),
		fastVotes:  make(map[InstanceID]*voteSet),
		recs:       make(map[InstanceID]*recState),
		openSince:  make(map[InstanceID]time.Time),
		lastModeAt: en.e.Now(),
	}
	en.e.Logf("prepare ballot %v from %d", b, en.leader.prepFrom)
	en.broadcast(prepareMsg{B: b, From: en.leader.prepFrom})
}

func (en *Engine) onPromise(from env.NodeID, m promiseMsg) {
	ls := en.leader
	if ls == nil || ls.established || m.B != ls.b {
		return
	}
	ls.promises[from] = m
	if len(ls.promises) >= ClassicQuorum(en.n) {
		en.establish()
	}
}

// establish completes phase 1: pick safe values for every instance
// reported by the promise quorum, re-propose them, fill gaps with no-ops,
// open the fast range if the ballot is fast, and flush pending client
// values.
func (en *Engine) establish() {
	ls := en.leader
	ls.established = true
	en.adoptBallot(ls.b)
	en.e.Logf("established ballot %v", ls.b)

	// Group reports by instance, folding promises in member order: the
	// per-instance report lists feed selectValue, and map order here is
	// exactly the PR-6 establish() bug (outstanding values re-proposed in
	// map order across a leader change, breaking FIFO).
	byInst := make(map[InstanceID][]acceptedInfo)
	maxInst := ls.prepFrom - 1
	for _, from := range detsort.Keys(ls.promises) {
		for _, a := range ls.promises[from].Accepted {
			byInst[a.Inst] = append(byInst[a.Inst], a)
			if a.Inst > maxInst {
				maxInst = a.Inst
			}
		}
	}
	ls.nextInstance = maxInst + 1
	if ls.nextInstance < ls.prepFrom {
		ls.nextInstance = ls.prepFrom
	}

	// Decide what to propose at every open instance.
	insts := make([]InstanceID, 0, len(byInst))
	for i := range byInst {
		insts = append(insts, i)
	}
	sort.Slice(insts, func(a, b int) bool { return insts[a] < insts[b] })
	q := len(ls.promises)
	var noopSeq int64
	for i := ls.prepFrom; i < ls.nextInstance; i++ {
		if v, ok := en.chosen[i]; ok {
			// Already decided: just re-announce.
			en.announceChosen(i, v)
			continue
		}
		reports := byInst[i]
		v, found := selectValue(reports, q, en.n)
		if !found {
			noopSeq++
			v = noOpValue(en.me, en.epoch, en.nextSeq*1000+noopSeq)
		}
		en.classicPropose(i, ls.b, v)
	}

	if ls.b.Fast {
		ls.anySent = true
		en.broadcast(anyMsg{B: ls.b, From: ls.nextInstance})
	}

	// Re-propose our own outstanding values — in submission order, not
	// map order, so values that have never reached an instance yet are
	// assigned consecutive slots FIFO — and drain the local queue.
	seqs := make([]int64, 0, len(en.outstanding))
	for seq := range en.outstanding {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		pv := en.outstanding[seq]
		pv.lastSent = en.e.Now()
		en.propose(pv.v)
	}
	en.pump()
}

// selectValue applies the phase-1 value-selection rule to the reports a
// promise quorum of size q (out of n) made for one instance. For a
// classic top ballot the unique reported value is mandatory; for a fast
// top ballot value v is choosable iff at least q+⌈3n/4⌉−n quorum members
// voted v in it (Fast Paxos, Prop. 1); with no choosable value any
// reported value is safe, and with no reports at all nothing was chosen,
// so found=false lets the caller propose anything (a no-op).
func selectValue(reports []acceptedInfo, q, n int) (Value, bool) {
	if len(reports) == 0 {
		return Value{}, false
	}
	k := ballotNone
	for _, r := range reports {
		if k.Less(r.B) {
			k = r.B
		}
	}
	var atK []acceptedInfo
	for _, r := range reports {
		if r.B == k {
			atK = append(atK, r)
		}
	}
	if !k.Fast {
		return atK[0].V, true
	}
	counts := make(map[ValueID]int)
	values := make(map[ValueID]Value)
	for _, r := range atK {
		counts[r.V.ID]++
		values[r.V.ID] = r.V
	}
	threshold := q + FastQuorum(n) - n
	var bestID ValueID
	best := -1
	for id, c := range counts {
		if c >= threshold && (c > best || (c == best && valueIDLess(id, bestID))) {
			best = c
			bestID = id
		}
	}
	if best >= 0 {
		return values[bestID], true
	}
	// No value may have been (or can be) chosen at k: free choice.
	// Re-proposing one of the reported values keeps client progress;
	// ties break on ValueID for determinism.
	most := atK[0]
	mostCount := counts[most.V.ID]
	for _, r := range atK {
		c := counts[r.V.ID]
		if c > mostCount || (c == mostCount && valueIDLess(r.V.ID, most.V.ID)) {
			mostCount = c
			most = r
		}
	}
	return most.V, true
}

// leaderPropose assigns a value to a fresh instance (classic) or sends it
// down the fast path when a fast round is open.
func (en *Engine) leaderPropose(v Value) {
	ls := en.leader
	if ls == nil || !ls.established {
		return
	}
	if en.isDelivered(v.ID) {
		return // duplicate of an already applied value
	}
	if _, dup := ls.inflightID[v.ID]; dup {
		return // already being proposed
	}
	if ls.b.Fast && ls.anySent {
		en.broadcast(fastProposeMsg{V: v})
		return
	}
	inst := ls.nextInstance
	ls.nextInstance++
	en.classicPropose(inst, ls.b, v)
}

func (en *Engine) classicPropose(inst InstanceID, b Ballot, v Value) {
	ls := en.leader
	p := &proposal{b: b, inst: inst, v: v, acks: make(map[env.NodeID]bool), lastSent: en.e.Now()}
	ls.inflight[inst] = p
	ls.inflightID[v.ID] = inst
	en.broadcast(acceptMsg{B: b, Inst: inst, V: v})
}

func (en *Engine) onForward(from env.NodeID, m forwardMsg) {
	if en.leader != nil && en.leader.established {
		en.leaderPropose(m.V)
	}
}

// onAccepted counts phase-2b votes: acknowledgements of classic or
// recovery proposals, and fast-round self-assigned votes.
func (en *Engine) onAccepted(from env.NodeID, m acceptedMsg) {
	ls := en.leader
	if ls == nil || !ls.established {
		return
	}
	if m.Inst < en.firstUnchosen {
		return // stale: already decided and delivered
	}
	if _, done := en.chosen[m.Inst]; done {
		return
	}
	if p, ok := ls.inflight[m.Inst]; ok && p.b == m.B {
		p.acks[from] = true
		if len(p.acks) >= quorum(p.b, en.n) {
			en.choose(m.Inst, p.v)
		}
		return
	}
	if ls.b.Fast && m.B == ls.b {
		en.onFastVote(from, m)
	}
}

func (en *Engine) onFastVote(from env.NodeID, m acceptedMsg) {
	ls := en.leader
	vs := ls.fastVotes[m.Inst]
	if vs == nil {
		vs = &voteSet{
			votes:   make(map[env.NodeID]ValueID),
			values:  make(map[ValueID]Value),
			firstAt: en.e.Now(),
		}
		ls.fastVotes[m.Inst] = vs
	}
	if m.Inst > ls.maxVote {
		ls.maxVote = m.Inst
	}
	if _, dup := vs.votes[from]; dup {
		return // one vote per acceptor per fast round
	}
	vs.votes[from] = m.V.ID
	vs.values[m.V.ID] = m.V

	counts := make(map[ValueID]int)
	best, total := 0, 0
	var bestID ValueID
	for _, id := range vs.votes {
		counts[id]++
		total++
		if counts[id] > best {
			best = counts[id]
			bestID = id
		}
	}
	fq := FastQuorum(en.n)
	switch {
	case best >= fq:
		en.choose(m.Inst, vs.values[bestID])
	case best+(en.n-total) < fq:
		// Collision: no value can reach a fast quorum any more.
		en.startRecovery(m.Inst)
	}
}

// startRecovery runs coordinated recovery for one instance: a
// per-instance classic round at a fresh ballot owned by this coordinator,
// seeded with the acceptors' existing votes (recQuery/recInfo), then a
// classic phase 2 with the selected value.
func (en *Engine) startRecovery(inst InstanceID) {
	ls := en.leader
	if ls == nil || !ls.established {
		return
	}
	if r, ok := ls.recs[inst]; ok && en.e.Now().Sub(r.started) < en.cfg.RetryTimeout {
		return // one attempt at a time
	}
	after := en.maxBallotSeq
	if ls.recSeq > after {
		after = ls.recSeq
	}
	ls.recSeq = nextOwnedBallot(after, env.NodeID(en.myIdx), en.n)
	b := Ballot{Seq: ls.recSeq} // recovery rounds are classic
	en.noteBallot(b)
	ls.recs[inst] = &recState{b: b, replies: make(map[env.NodeID]recInfoMsg), started: en.e.Now()}
	en.broadcast(recQueryMsg{B: b, Inst: inst})
}

func (en *Engine) onRecInfo(from env.NodeID, m recInfoMsg) {
	ls := en.leader
	if ls == nil || !ls.established {
		return
	}
	rec, ok := ls.recs[m.Inst]
	if !ok || rec.b != m.B || rec.proposed {
		return
	}
	rec.replies[from] = m
	if len(rec.replies) < ClassicQuorum(en.n) {
		return
	}
	rec.proposed = true
	// Fold the recovery quorum in member order: selectValue's choice must
	// not depend on map iteration (detorder invariant).
	var reports []acceptedInfo
	for _, from := range detsort.Keys(rec.replies) {
		if r := rec.replies[from]; r.Voted {
			reports = append(reports, acceptedInfo{Inst: r.Inst, B: r.VB, V: r.V})
		}
	}
	v, found := selectValue(reports, len(rec.replies), en.n)
	if !found {
		v = noOpValue(en.me, en.epoch, en.nextSeq*1000+int64(m.Inst%997)+1)
	}
	en.classicPropose(m.Inst, rec.b, v)
}

// choose finalizes an instance and announces it to every learner.
func (en *Engine) choose(inst InstanceID, v Value) {
	if _, ok := en.chosen[inst]; ok {
		return
	}
	en.announceChosen(inst, v)
}

// announceChosen broadcasts a decided instance to the voting members and
// forwards it to any attached non-voting learners, which otherwise only
// hear about decisions through catch-up.
func (en *Engine) announceChosen(inst InstanceID, v Value) {
	m := chosenMsg{Inst: inst, V: v}
	en.broadcast(m)
	for _, l := range en.cfg.Learners {
		en.e.Send(l, m)
	}
}

func (en *Engine) onNack(from env.NodeID, m nackMsg) {
	en.noteBallot(m.Promised)
	if en.leader != nil && en.leader.b.Less(m.Promised) &&
		en.owner(m.Promised) != en.me {
		// Someone outpaced us; stand down and let their round proceed.
		en.leader = nil
		en.lastLeaderSeen = en.e.Now() // back off before re-electing
	}
}

// leaderSweep performs periodic leader duties.
func (en *Engine) leaderSweep(now time.Time) {
	ls := en.leader

	// Mode management: switch between fast and classic rounds as the
	// failure detector's live count crosses ⌈3N/4⌉.
	desiredFast := en.cfg.FastEnabled && en.aliveCount() >= FastQuorum(en.n)
	if desiredFast != ls.b.Fast && now.Sub(ls.lastModeAt) > time.Second {
		en.e.Logf("mode change: fast=%v alive=%d", desiredFast, en.aliveCount())
		en.startPrepare()
		return
	}

	// Retry stalled phase-2 proposals (lost messages, recovering
	// acceptors); iterate in instance order for determinism.
	var stalled []InstanceID
	for inst, p := range ls.inflight {
		if now.Sub(p.lastSent) > en.cfg.RetryTimeout {
			stalled = append(stalled, inst)
		}
	}
	sort.Slice(stalled, func(i, j int) bool { return stalled[i] < stalled[j] })
	for _, inst := range stalled {
		p := ls.inflight[inst]
		p.lastSent = now
		en.broadcast(acceptMsg{B: p.b, Inst: p.inst, V: p.v})
	}

	// Gap repair: any instance below the frontier that stays undecided
	// blocks delivery everywhere; recover it.
	frontier := ls.nextInstance - 1
	if ls.maxVote > frontier {
		frontier = ls.maxVote
	}
	if en.maxKnown > frontier {
		frontier = en.maxKnown
	}
	const scanWindow = 256
	scanned := 0
	for i := en.firstUnchosen; i <= frontier && scanned < scanWindow; i++ {
		scanned++
		if _, done := en.chosen[i]; done {
			continue
		}
		if _, busy := ls.inflight[i]; busy {
			continue
		}
		if r, busy := ls.recs[i]; busy && now.Sub(r.started) < en.cfg.RetryTimeout {
			continue
		}
		if vs, ok := ls.fastVotes[i]; ok {
			if now.Sub(vs.firstAt) > en.cfg.FastDecisionTimeout {
				en.startRecovery(i)
			}
			continue
		}
		first, seen := ls.openSince[i]
		if !seen {
			ls.openSince[i] = now
			continue
		}
		if now.Sub(first) > 2*en.cfg.FastDecisionTimeout {
			en.startRecovery(i)
		}
	}
}
