package paxos

import (
	"fmt"
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/sim"
)

// testCluster runs N engines on the simulator and records, per node, the
// delivered command sequence of the current incarnation.
type testCluster struct {
	t         *testing.T
	s         *sim.Sim
	n         int
	engines   []*Engine
	delivered [][]string              // per node, applied commands in order
	instOf    []map[InstanceID]string // per node, instance -> command (for consistency checks)
}

type engineNode struct {
	c  *testCluster
	id int
}

func (n *engineNode) Start(e env.Env) {
	c := n.c
	c.delivered[n.id] = nil
	c.instOf[n.id] = make(map[InstanceID]string)
	cfg := c.baseConfig()
	cfg.Deliver = func(inst InstanceID, v Value) {
		for _, cmd := range v.Cmds {
			s, ok := cmd.(string)
			if !ok {
				c.t.Errorf("node %d: non-string cmd %v", n.id, cmd)
				continue
			}
			c.delivered[n.id] = append(c.delivered[n.id], s)
			c.instOf[n.id][inst] = fmt.Sprintf("%v", v.ID)
		}
	}
	en := New(cfg)
	c.engines[n.id] = en
	en.Boot(e, 0, nil)
}

func (n *engineNode) Receive(from env.NodeID, msg env.Message) {
	c := n.c
	if en := c.engines[n.id]; en != nil {
		en.Handle(from, msg)
	}
}

var testFast bool

// testTune, when non-nil, adjusts every engine's Config before New —
// flow-control tests use it to shrink windows and thresholds. Tests that
// set it must clear it on exit (defer func() { testTune = nil }()).
var testTune func(*Config)

func (c *testCluster) baseConfig() Config {
	cfg := Config{
		FastEnabled: testFast,
		BatchDelay:  2 * time.Millisecond,
	}
	if testTune != nil {
		testTune(&cfg)
	}
	return cfg
}

func newCluster(t *testing.T, n int, fast bool, seed uint64, net sim.NetConfig) *testCluster {
	t.Helper()
	testFast = fast
	c := &testCluster{
		t:         t,
		n:         n,
		engines:   make([]*Engine, n),
		delivered: make([][]string, n),
		instOf:    make([]map[InstanceID]string, n),
	}
	c.s = sim.New(sim.Config{Seed: seed, Net: net})
	for i := 0; i < n; i++ {
		id := i
		c.s.AddNode(func() env.Node { return &engineNode{c: c, id: id} })
	}
	c.s.StartAll()
	return c
}

// submit schedules a command submission at node id after d.
func (c *testCluster) submit(d time.Duration, id int, cmd string) {
	c.s.After(d, func() {
		if en := c.engines[id]; en != nil && c.s.Alive(env.NodeID(id)) {
			en.Submit(cmd)
		}
	})
}

// checkConsistency verifies that all live nodes delivered consistent
// sequences: for every pair, one's delivery log is a prefix of the
// other's, and no node applied a command twice.
func (c *testCluster) checkConsistency() {
	c.t.Helper()
	for id := 0; id < c.n; id++ {
		seen := make(map[string]bool)
		for _, cmd := range c.delivered[id] {
			if seen[cmd] {
				c.t.Errorf("node %d applied %q twice", id, cmd)
			}
			seen[cmd] = true
		}
	}
	for a := 0; a < c.n; a++ {
		for b := a + 1; b < c.n; b++ {
			la, lb := c.delivered[a], c.delivered[b]
			m := len(la)
			if len(lb) < m {
				m = len(lb)
			}
			for i := 0; i < m; i++ {
				if la[i] != lb[i] {
					c.t.Fatalf("divergence at position %d: node %d=%q node %d=%q",
						i, a, la[i], b, lb[i])
				}
			}
		}
	}
	// Same instance must never hold different values on different nodes.
	for a := 0; a < c.n; a++ {
		for b := a + 1; b < c.n; b++ {
			for inst, va := range c.instOf[a] {
				if vb, ok := c.instOf[b][inst]; ok && va != vb {
					c.t.Fatalf("instance %d: node %d chose %s, node %d chose %s", inst, a, va, b, vb)
				}
			}
		}
	}
}

// requireDelivered asserts that node id applied exactly want commands.
func (c *testCluster) requireDelivered(id, want int) {
	c.t.Helper()
	if got := len(c.delivered[id]); got != want {
		c.t.Fatalf("node %d delivered %d commands, want %d", id, got, want)
	}
}

func testModes(t *testing.T, fn func(t *testing.T, fast bool)) {
	t.Run("classic", func(t *testing.T) { fn(t, false) })
	t.Run("fast", func(t *testing.T) { fn(t, true) })
}

func TestSingleCommand(t *testing.T) {
	testModes(t, func(t *testing.T, fast bool) {
		c := newCluster(t, 3, fast, 1, sim.NetConfig{})
		c.submit(2*time.Second, 1, "hello")
		c.s.RunFor(6 * time.Second)
		for id := 0; id < 3; id++ {
			c.requireDelivered(id, 1)
		}
		c.checkConsistency()
	})
}

func TestManyProposers(t *testing.T) {
	testModes(t, func(t *testing.T, fast bool) {
		const total = 250
		c := newCluster(t, 5, fast, 2, sim.NetConfig{})
		for i := 0; i < total; i++ {
			c.submit(2*time.Second+time.Duration(i)*3*time.Millisecond, i%5,
				fmt.Sprintf("cmd-%d", i))
		}
		c.s.RunFor(12 * time.Second)
		for id := 0; id < 5; id++ {
			c.requireDelivered(id, total)
		}
		c.checkConsistency()
	})
}

func TestLeaderCrashFailover(t *testing.T) {
	testModes(t, func(t *testing.T, fast bool) {
		const total = 100
		c := newCluster(t, 5, fast, 3, sim.NetConfig{})
		for i := 0; i < total; i++ {
			c.submit(2*time.Second+time.Duration(i)*20*time.Millisecond, 1+i%4,
				fmt.Sprintf("cmd-%d", i))
		}
		// Node 0 wins the initial election; kill it mid-stream.
		c.s.After(2500*time.Millisecond, func() { c.s.Crash(0) })
		c.s.RunFor(15 * time.Second)
		for id := 1; id < 5; id++ {
			c.requireDelivered(id, total)
		}
		c.checkConsistency()
	})
}

func TestCrashRecoverCatchUp(t *testing.T) {
	testModes(t, func(t *testing.T, fast bool) {
		const total = 120
		c := newCluster(t, 5, fast, 4, sim.NetConfig{})
		for i := 0; i < total; i++ {
			c.submit(2*time.Second+time.Duration(i)*25*time.Millisecond, i%4,
				fmt.Sprintf("cmd-%d", i))
		}
		c.s.After(3*time.Second, func() { c.s.Crash(4) })
		c.s.After(6*time.Second, func() { c.s.Restart(4) })
		c.s.RunFor(20 * time.Second)
		// Node 4 restarts with delivery floor 0 and must relearn the
		// full sequence.
		for id := 0; id < 5; id++ {
			c.requireDelivered(id, total)
		}
		c.checkConsistency()
	})
}

func TestMessageLoss(t *testing.T) {
	testModes(t, func(t *testing.T, fast bool) {
		const total = 80
		c := newCluster(t, 5, fast, 5, sim.NetConfig{DropRate: 0.05})
		for i := 0; i < total; i++ {
			c.submit(2*time.Second+time.Duration(i)*30*time.Millisecond, i%5,
				fmt.Sprintf("cmd-%d", i))
		}
		c.s.RunFor(30 * time.Second)
		for id := 0; id < 5; id++ {
			c.requireDelivered(id, total)
		}
		c.checkConsistency()
	})
}

func TestBlocksBelowMajority(t *testing.T) {
	testModes(t, func(t *testing.T, fast bool) {
		c := newCluster(t, 5, fast, 6, sim.NetConfig{})
		c.submit(2*time.Second, 0, "before")
		c.s.RunFor(4 * time.Second)
		c.requireDelivered(0, 1)

		// Kill three of five: below majority, the queue must block.
		c.s.Crash(2)
		c.s.Crash(3)
		c.s.Crash(4)
		c.submit(time.Second, 0, "blocked")
		c.s.RunFor(8 * time.Second)
		c.requireDelivered(0, 1)
		c.requireDelivered(1, 1)

		// Recovery restores liveness and the blocked command lands.
		c.s.Restart(2)
		c.s.Restart(3)
		c.s.RunFor(12 * time.Second)
		for _, id := range []int{0, 1, 2, 3} {
			c.requireDelivered(id, 2)
		}
		c.checkConsistency()
	})
}

func TestConcurrentCrashesConsistency(t *testing.T) {
	testModes(t, func(t *testing.T, fast bool) {
		const total = 150
		c := newCluster(t, 5, fast, 7, sim.NetConfig{DropRate: 0.02})
		for i := 0; i < total; i++ {
			c.submit(2*time.Second+time.Duration(i)*20*time.Millisecond, i%5,
				fmt.Sprintf("cmd-%d", i))
		}
		c.s.After(2800*time.Millisecond, func() { c.s.Crash(1) })
		c.s.After(3100*time.Millisecond, func() { c.s.Crash(2) })
		c.s.After(5*time.Second, func() { c.s.Restart(1) })
		c.s.After(6*time.Second, func() { c.s.Restart(2) })
		c.s.RunFor(30 * time.Second)
		// Nodes that never crashed must have everything that was
		// submitted while they could make progress; above all, all
		// sequences must be mutually consistent.
		c.checkConsistency()
		if len(c.delivered[0]) == 0 {
			t.Fatal("no progress at all")
		}
	})
}

// TestStaleLeaderRejoinLiveness is the regression test for the
// partition-heal livelock the correlated faultloads exposed: the
// established leader is partitioned away under load, the majority elects
// a successor (fast mode — FastQuorum(5)=4 exactly covers the surviving
// acceptors), and on heal the stale ex-leader bids with a ballot above
// everything. Pre-fix, the old leader's next heartbeat (at its lower,
// long-superseded ballot) made the bidder adopt that stale leadership
// and abandon its own bid — after every acceptor had already promised
// the bid — leaving the cluster promised to a ballot nobody owned:
// every fast proposal was silently dropped, forever. The fix is
// two-sided: a bidder counts its own bid as the highest leadership
// ballot seen, and acceptors nack the coordinator of a superseded fast
// round instead of dropping its proposals silently.
//
// The seeds are chosen so the heal-time race (the rejoiner's sweep bid
// firing before the sitting leader's first heartbeat lands) actually
// occurs: each of these wedged the pre-fix engine.
func TestStaleLeaderRejoinLiveness(t *testing.T) {
	for _, seed := range []uint64{6, 37, 54, 60} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newCluster(t, 5, true, seed, sim.NetConfig{})
			c.submit(10*time.Millisecond, 0, "boot")
			c.s.RunFor(time.Second)
			lead := -1
			for i, en := range c.engines {
				if en.IsLeader() {
					lead = i
				}
			}
			if lead < 0 {
				t.Fatal("no leader established")
			}

			h := c.s.Partition(env.NodeID(lead))
			// Load through the partition keeps the majority committing
			// (and its ballot state moving) without the old leader.
			n := 0
			for d := 100 * time.Millisecond; d < 4*time.Second; d += 50 * time.Millisecond {
				n++
				c.submit(d, (lead+1)%c.n, fmt.Sprintf("cmd%d", n))
			}
			c.s.RunFor(5 * time.Second)
			if got := len(c.delivered[(lead+1)%c.n]); got < n {
				t.Fatalf("majority delivered %d of %d during the partition", got, n)
			}

			h.Heal()
			c.s.RunFor(2 * time.Second)

			// THE regression: values submitted after the heal must still
			// commit, on every node including the rejoined ex-leader.
			const post = 10
			for i := 1; i <= post; i++ {
				c.submit(time.Duration(i)*100*time.Millisecond, (lead+2)%c.n, fmt.Sprintf("post%d", i))
			}
			c.s.RunFor(10 * time.Second)
			c.checkConsistency()
			for id := 0; id < c.n; id++ {
				if got := len(c.delivered[id]); got != 1+n+post {
					t.Fatalf("node %d delivered %d commands after heal, want %d (post-heal liveness lost)",
						id, got, 1+n+post)
				}
			}
		})
	}
}
