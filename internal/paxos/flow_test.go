package paxos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"robuststore/internal/sim"
)

// Proposer flow-control tests: FIFO ordering across the batch→queue
// boundary, queue-byte accounting, the in-flight cap as a real bound on
// every proposal path, deep-backlog draining (the O(n²) drain
// regression), and the admission controller's grades.

// TestPipelineFIFO: a burst far larger than the in-flight window must be
// delivered in exact submission order — commands cross from the local
// queue into proposed values without reordering, and the learner applies
// instances in order.
func TestPipelineFIFO(t *testing.T) {
	testTune = func(cfg *Config) {
		cfg.MaxBatchCmds = 4
		cfg.MaxInFlight = 2
	}
	defer func() { testTune = nil }()
	c := newCluster(t, 3, false, 11, sim.NetConfig{})

	const total = 100
	for i := 0; i < total; i++ {
		c.submit(50*time.Millisecond, 0, fmt.Sprintf("cmd-%03d", i))
	}
	c.s.RunFor(8 * time.Second)

	c.requireDelivered(0, total)
	for i, got := range c.delivered[0] {
		if want := fmt.Sprintf("cmd-%03d", i); got != want {
			t.Fatalf("position %d: delivered %q, want %q (FIFO violated)", i, got, want)
		}
	}
	c.checkConsistency()
}

// TestInFlightCapUniform: no proposal path — size-triggered, timer-
// triggered, or queue drain — may exceed MaxInFlight outstanding values.
// The pre-fix engine's timer flush bypassed the check and overshot the
// window.
func TestInFlightCapUniform(t *testing.T) {
	testTune = func(cfg *Config) {
		cfg.MaxBatchCmds = 4
		cfg.MaxInFlight = 2
	}
	defer func() { testTune = nil }()
	c := newCluster(t, 3, false, 12, sim.NetConfig{})

	over := 0
	check := func() {
		if en := c.engines[0]; en != nil {
			if n := len(en.outstanding); n > en.cfg.MaxInFlight {
				over = n
			}
		}
	}
	var tick func()
	tick = func() {
		check()
		c.s.After(time.Millisecond, tick)
	}
	c.s.After(0, tick)

	// Mixed arrival pattern: bursts (size-triggered flushes) and
	// stragglers (timer flushes) interleaved.
	for i := 0; i < 60; i++ {
		at := 50*time.Millisecond + time.Duration(i/10)*7*time.Millisecond
		c.submit(at, 0, fmt.Sprintf("c%02d", i))
	}
	c.s.RunFor(5 * time.Second)

	if over > 0 {
		t.Fatalf("outstanding reached %d, exceeding MaxInFlight=2", over)
	}
	c.requireDelivered(0, 60)
	c.checkConsistency()
}

// TestQueueBytesAccounting: queueBytes must track the queued commands
// exactly — never negative while draining, zero once the queue is empty.
func TestQueueBytesAccounting(t *testing.T) {
	testTune = func(cfg *Config) {
		cfg.MaxBatchCmds = 8
		cfg.MaxInFlight = 2
		cfg.CmdSize = func(cmd any) int64 { return int64(len(cmd.(string))) }
	}
	defer func() { testTune = nil }()
	c := newCluster(t, 3, false, 13, sim.NetConfig{})

	negative := false
	var tick func()
	tick = func() {
		if en := c.engines[0]; en != nil && en.queueBytes < 0 {
			negative = true
		}
		c.s.After(time.Millisecond, tick)
	}
	c.s.After(0, tick)

	// Commands of varying sizes, bursty enough to queue deeply.
	total := 0
	for i := 0; i < 200; i++ {
		cmd := fmt.Sprintf("cmd-%03d-%s", i, strings.Repeat("x", i%7))
		c.submit(40*time.Millisecond, 0, cmd)
		total++
	}
	c.s.RunFor(10 * time.Second)

	if negative {
		t.Fatal("queueBytes went negative while draining")
	}
	en := c.engines[0]
	c.requireDelivered(0, total)
	if en.queueLen() != 0 {
		t.Fatalf("queue not drained: %d commands left", en.queueLen())
	}
	if en.queueBytes != 0 {
		t.Fatalf("queueBytes = %d after drain, want 0", en.queueBytes)
	}
	c.checkConsistency()
}

// TestDeepBacklogDrains is the O(n²) drain regression test: a backlog of
// tens of thousands of queued commands must drain completely, with the
// ring's consumed prefix reclaimed rather than the remainder reallocated
// per batch.
func TestDeepBacklogDrains(t *testing.T) {
	const total = 30000
	testTune = func(cfg *Config) {
		cfg.MaxBatchCmds = 64
		cfg.MaxInFlight = 8
	}
	defer func() { testTune = nil }()
	c := newCluster(t, 3, false, 14, sim.NetConfig{})

	// One instant, far beyond the window: everything lands in cmdQueue.
	c.s.After(50*time.Millisecond, func() {
		en := c.engines[0]
		for i := 0; i < total; i++ {
			en.Submit(fmt.Sprintf("b%05d", i))
		}
	})
	c.s.RunFor(60 * time.Second)

	c.requireDelivered(0, total)
	en := c.engines[0]
	if en.queueLen() != 0 || en.queueBytes != 0 {
		t.Fatalf("backlog not drained: queueLen=%d queueBytes=%d", en.queueLen(), en.queueBytes)
	}
	// The ring must have been reclaimed, not left holding the whole
	// consumed history.
	if en.qHead != 0 || len(en.cmdQueue) != 0 {
		t.Fatalf("queue storage not reclaimed: qHead=%d len=%d", en.qHead, len(en.cmdQueue))
	}
	// Delivery order is still FIFO end to end.
	for i, got := range c.delivered[0] {
		if want := fmt.Sprintf("b%05d", i); got != want {
			t.Fatalf("position %d: delivered %q, want %q", i, got, want)
		}
	}
}

// TestAdmissionControllerGrades exercises the pure controller: triggers
// fire on either depth or bytes, and release only at half the trigger
// (hysteresis), stepping down through slowdown.
func TestAdmissionControllerGrades(t *testing.T) {
	a := admissionController{cfg: AdmissionConfig{
		SlowdownCmds: 10, StopCmds: 40,
		SlowdownBytes: 1 << 20, StopBytes: 4 << 20,
	}}
	steps := []struct {
		cmds  int
		bytes int64
		want  AdmissionState
	}{
		{0, 0, AdmissionClear},
		{9, 0, AdmissionClear},
		{10, 0, AdmissionSlowdown},      // depth trigger
		{9, 0, AdmissionSlowdown},       // above half: hold
		{4, 0, AdmissionClear},          // below half: release
		{0, 1 << 20, AdmissionSlowdown}, // byte trigger alone
		{0, 4 << 20, AdmissionStop},     // escalate on bytes
		{0, 3 << 20, AdmissionStop},     // above half stop: hold
		{0, 1 << 21, AdmissionStop},     // still ≥ half of StopBytes
		{12, 0, AdmissionSlowdown},      // below half stop, above slowdown
		{0, 0, AdmissionClear},
		{41, 0, AdmissionStop}, // clear → stop directly
		{19, 0, AdmissionSlowdown},
		{4, 0, AdmissionClear},
	}
	for i, s := range steps {
		if got := a.update(s.cmds, s.bytes); got != s.want {
			t.Fatalf("step %d (cmds=%d bytes=%d): state %v, want %v", i, s.cmds, s.bytes, got, s.want)
		}
	}
}

// TestAdmissionFiresAndReleases: on a live engine, a burst beyond the
// stop threshold must grade AdmissionStop, and draining the backlog must
// release the grade back to clear.
func TestAdmissionFiresAndReleases(t *testing.T) {
	testTune = func(cfg *Config) {
		cfg.MaxBatchCmds = 4
		cfg.MaxInFlight = 1
		cfg.Admission = AdmissionConfig{SlowdownCmds: 10, StopCmds: 30}
	}
	defer func() { testTune = nil }()
	c := newCluster(t, 3, false, 15, sim.NetConfig{})

	var atBurst, end AdmissionState
	c.s.After(50*time.Millisecond, func() {
		en := c.engines[0]
		for i := 0; i < 100; i++ {
			en.Submit(fmt.Sprintf("a%03d", i))
		}
		atBurst = en.AdmissionState()
	})
	c.s.RunFor(20 * time.Second)
	end = c.engines[0].AdmissionState()

	if atBurst != AdmissionStop {
		t.Fatalf("after 100-cmd burst with StopCmds=30: state %v, want stop", atBurst)
	}
	if end != AdmissionClear {
		t.Fatalf("after drain: state %v, want clear", end)
	}
	c.requireDelivered(0, 100)
	c.checkConsistency()
}
