package paxos

import (
	"sort"
	"time"

	"robuststore/internal/detsort"
	"robuststore/internal/env"
)

// Config parameterizes an Engine. Zero fields take the documented
// defaults.
type Config struct {
	// FastEnabled allows fast rounds (Fast Paxos) while at least
	// ⌈3N/4⌉ replicas are alive; otherwise the engine uses classic
	// Paxos rounds, matching the paper's Treplica configuration (§2).
	FastEnabled bool

	// BatchDelay bounds how long submitted commands wait to be grouped
	// into one proposed value. Default 5 ms.
	BatchDelay time.Duration

	// MaxBatchCmds flushes a batch early once it holds this many
	// commands. Default 64.
	MaxBatchCmds int

	// MaxInFlight bounds the number of proposed-but-undelivered batches
	// per node — the consensus pipeline depth. Proposals stream into
	// consecutive instance slots without waiting for earlier batches to
	// be learned; once the window is full, further commands queue
	// locally and are packed into full batches as slots free up
	// (backpressure grows the group-commit size under load). The bound
	// is enforced uniformly: no proposal path — size-triggered,
	// timer-triggered, or queue drain — may overshoot it. Default 5.
	MaxInFlight int

	// Sync selects the WAL flush policy (see SyncMode). The default,
	// SyncBatch, coalesces concurrently pending WAL records into one
	// group commit per flush.
	Sync SyncMode

	// SyncBytes flushes a pending WAL group early once it holds this
	// many bytes (SyncBatch only). Default 256 KiB.
	SyncBytes int64

	// SyncDelay bounds how long a pending WAL group may wait for more
	// records before flushing (SyncBatch only). The default, 0, flushes
	// at the next executor step: coalescing then comes only from records
	// that pile up behind an in-flight flush, which adds no latency at
	// low concurrency and converges to full group commit under load.
	SyncDelay time.Duration

	// Admission parameterizes the proposer's write-admission controller
	// (see AdmissionConfig). Zero fields take defaults derived from the
	// MaxInFlight × MaxBatchCmds window.
	Admission AdmissionConfig

	// HeartbeatInterval is the failure-detector ping period. Default
	// 100 ms.
	HeartbeatInterval time.Duration

	// LeaderTimeout is the base suspicion timeout before a node tries
	// to become leader; it is staggered by node index to avoid duels.
	// Default 600 ms.
	LeaderTimeout time.Duration

	// RetryTimeout re-proposes a value that has not been learned.
	// Default 800 ms.
	RetryTimeout time.Duration

	// FastDecisionTimeout is how long the coordinator waits for a fast
	// quorum on an instance before starting coordinated recovery.
	// Default 40 ms.
	FastDecisionTimeout time.Duration

	// SweepInterval is the housekeeping period (retries, gap recovery,
	// catch-up checks). Default 50 ms.
	SweepInterval time.Duration

	// CatchUpChunk bounds entries per catch-up reply. Default 512.
	CatchUpChunk int

	// CmdSize returns the modeled serialized size of a command in
	// bytes; nil means 128 bytes each.
	CmdSize func(cmd any) int64

	// Deliver is invoked, in instance order and exactly once per fresh
	// value, with each decided command batch. No-ops and duplicate
	// values (possible under fast-path collisions and retries) are
	// filtered out before delivery. Required.
	Deliver func(inst InstanceID, v Value)

	// OnCatchUpGap is invoked when peers can no longer supply the log
	// suffix this node needs (they compacted past it); the layer above
	// must fall back to a full state transfer. May be nil.
	OnCatchUpGap func(firstAvail InstanceID)

	// Members lists the consensus group. Nil means every node of the
	// runtime; deployments with non-member nodes (the web tier's proxy)
	// must set it, and runtimes hosting several independent groups
	// (internal/shard) give each group its own disjoint member set. The
	// slice must be identical (same IDs, same order) on every member:
	// ballot ownership is computed round-robin over the member *index*,
	// so the IDs themselves may be arbitrary.
	Members []env.NodeID

	// Learner marks this engine as a non-voting learner: it receives
	// learn/commit traffic and applies the log but never votes, proposes,
	// or counts toward any quorum. A learner is not listed in Members
	// (Members still names the voting group it observes) and sends no
	// pings — voters must not mistake it for a quorum participant.
	Learner bool

	// Learners lists the non-voting learner nodes attached to this
	// group. Voters forward decided values (chosenMsg) and heartbeats to
	// them so learners track the log and the current ballot without ever
	// being counted. Must be empty on learner engines themselves.
	Learners []env.NodeID
}

func (c Config) withDefaults() Config {
	if c.BatchDelay == 0 {
		c.BatchDelay = 5 * time.Millisecond
	}
	if c.MaxBatchCmds == 0 {
		c.MaxBatchCmds = 64
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 5
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.LeaderTimeout == 0 {
		c.LeaderTimeout = 600 * time.Millisecond
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 800 * time.Millisecond
	}
	if c.FastDecisionTimeout == 0 {
		c.FastDecisionTimeout = 40 * time.Millisecond
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 50 * time.Millisecond
	}
	if c.CatchUpChunk == 0 {
		c.CatchUpChunk = 512
	}
	if c.CmdSize == nil {
		c.CmdSize = func(any) int64 { return 128 }
	}
	if c.SyncBytes == 0 {
		c.SyncBytes = 256 << 10
	}
	c.Admission = c.Admission.withDefaults(c.MaxInFlight*c.MaxBatchCmds, 128)
	return c
}

// Engine is one replica's consensus state: proposer, acceptor, learner
// and (when it owns the current ballot) leader/coordinator, colocated as
// in Treplica. All methods must be called from the node's executor.
type Engine struct {
	cfg     Config
	e       env.Env
	me      env.NodeID
	myIdx   int // index of me within members (ballot ownership)
	n       int
	members []env.NodeID

	booted  bool
	started time.Time
	epoch   int64 // incarnation identifier embedded in ValueIDs

	// Proposer. cmdQueue is a FIFO ring: qHead indexes the next command
	// to propose and the consumed prefix is reclaimed in place, so deep
	// backlogs drain in O(n) total instead of reallocating the remainder
	// per batch.
	nextSeq     int64
	batchTimer  env.Timer
	outstanding map[int64]*pendingValue // keyed by ValueID.Seq
	cmdQueue    []any
	qHead       int
	queueBytes  int64
	wal         *walWriter
	adm         admissionController

	// Acceptor (durable; rebuilt from the WAL on boot).
	promised     Ballot
	instPromised map[InstanceID]Ballot
	accepted     map[InstanceID]acceptedInfo
	fastBallot   Ballot     // fast round this acceptor may self-assign in
	fastFrom     InstanceID // floor of the fast self-assignment range
	nextFree     InstanceID // next candidate slot for self-assignment
	records      int64      // durable records ever appended (for Truncate)

	// Ballot tracking.
	curBallot      Ballot // highest leadership claim seen
	maxBallotSeq   int64  // highest ballot sequence seen anywhere
	lastLeaderSeen time.Time
	lastSeen       map[env.NodeID]time.Time
	leader         *leaderState // non-nil while this node leads

	// Learner.
	chosen        map[InstanceID]Value
	firstUnchosen InstanceID                         // next instance to deliver
	retainedFrom  InstanceID                         // chosen entries below were compacted away
	maxKnown      InstanceID                         // highest instance known decided cluster-wide
	delivered     map[env.NodeID]map[int64]*dedupSet // node -> epoch -> seqs
	catchUpAt     time.Time
	gapSince      time.Time
}

type pendingValue struct {
	v        Value
	lastSent time.Time
}

// New creates an engine; Boot must be called before use.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Deliver == nil {
		panic("paxos: Config.Deliver is required")
	}
	return &Engine{
		cfg:          cfg,
		adm:          admissionController{cfg: cfg.Admission},
		outstanding:  make(map[int64]*pendingValue),
		instPromised: make(map[InstanceID]Ballot),
		accepted:     make(map[InstanceID]acceptedInfo),
		promised:     ballotNone,
		curBallot:    ballotNone,
		fastBallot:   ballotNone,
		maxBallotSeq: -1,
		lastSeen:     make(map[env.NodeID]time.Time),
		chosen:       make(map[InstanceID]Value),
		delivered:    make(map[env.NodeID]map[int64]*dedupSet),
	}
}

// Boot recovers the acceptor state from the WAL and joins the cluster.
// deliverFloor is the first instance the layer above still needs (one past
// its checkpoint); delivery resumes there while the missing suffix is
// learned from the active replicas — the recovery path of paper §2.
// ready, if non-nil, runs once the WAL has been replayed.
func (en *Engine) Boot(e env.Env, deliverFloor InstanceID, ready func()) {
	en.e = e
	en.wal = newWALWriter(e, en.cfg.Sync, en.cfg.SyncBytes, en.cfg.SyncDelay)
	en.me = e.ID()
	en.members = en.cfg.Members
	if en.members == nil {
		en.members = e.Peers()
	}
	en.myIdx = -1
	for i, m := range en.members {
		if m == en.me {
			en.myIdx = i
		}
	}
	if en.myIdx < 0 && !en.cfg.Learner {
		panic("paxos: this node is not listed in Members")
	}
	en.n = len(en.members)
	en.firstUnchosen = deliverFloor
	en.retainedFrom = deliverFloor
	en.nextFree = deliverFloor
	en.started = e.Now()
	en.epoch = e.Now().UnixNano()
	en.lastLeaderSeen = e.Now()
	e.Storage().ReadRecords(func(recs []env.Record, err error) {
		if err != nil {
			e.Logf("paxos: WAL read failed: %v", err)
			return
		}
		en.replay(recs)
		en.booted = true
		en.startTimers()
		en.requestCatchUp()
		if ready != nil {
			ready()
		}
	})
}

// replay rebuilds durable acceptor state from WAL records.
func (en *Engine) replay(recs []env.Record) {
	en.records = en.e.Storage().FirstIndex() + int64(len(recs))
	for _, r := range recs {
		switch d := r.Data.(type) {
		case promiseRec:
			if en.promised.Less(d.B) {
				en.promised = d.B
			}
			en.noteBallot(d.B)
		case instPromiseRec:
			if en.instPromised[d.Inst].Less(d.B) {
				en.instPromised[d.Inst] = d.B
			}
			en.noteBallot(d.B)
		case acceptRec:
			cur, ok := en.accepted[d.Inst]
			if !ok || cur.B.LessEq(d.B) {
				en.accepted[d.Inst] = acceptedInfo{Inst: d.Inst, B: d.B, V: d.V}
			}
			en.noteBallot(d.B)
		case compactRec:
			en.instPromised = make(map[InstanceID]Ballot, len(d.InstPromised))
			for i, b := range d.InstPromised {
				en.instPromised[i] = b
			}
			en.accepted = make(map[InstanceID]acceptedInfo, len(d.Accepted))
			for _, a := range d.Accepted {
				en.accepted[a.Inst] = a
			}
			en.promised = d.Promised
			en.noteBallot(d.Promised)
		}
	}
	for i := range en.accepted {
		if i >= en.nextFree {
			en.nextFree = i + 1
		}
	}
}

func (en *Engine) noteBallot(b Ballot) {
	if b.Seq > en.maxBallotSeq {
		en.maxBallotSeq = b.Seq
	}
}

func (en *Engine) startTimers() {
	var ping, sweep func()
	ping = func() {
		en.sendPing()
		en.e.After(en.cfg.HeartbeatInterval, ping)
	}
	sweep = func() {
		en.sweep()
		en.e.After(en.cfg.SweepInterval, sweep)
	}
	// Learners are silent: a learner ping would register in the voters'
	// failure detectors and inflate their live count past the real quorum.
	if !en.cfg.Learner {
		// Stagger the first ping so nodes do not tick in lockstep.
		en.e.After(time.Duration(en.e.Rand().Int63n(int64(en.cfg.HeartbeatInterval))), ping)
	}
	en.e.After(time.Duration(en.e.Rand().Int63n(int64(en.cfg.SweepInterval))), sweep)
}

// --- Status ------------------------------------------------------------

// FirstUnchosen returns the next instance to be delivered locally.
func (en *Engine) FirstUnchosen() InstanceID { return en.firstUnchosen }

// MaxKnown returns the highest instance this node knows to be decided
// somewhere in the cluster.
func (en *Engine) MaxKnown() InstanceID { return en.maxKnown }

// IsLeader reports whether this node currently leads.
func (en *Engine) IsLeader() bool { return en.leader != nil && en.leader.established }

// CurrentBallot returns the highest leadership ballot seen.
func (en *Engine) CurrentBallot() Ballot { return en.curBallot }

// FastActive reports whether the current ballot runs in fast mode.
func (en *Engine) FastActive() bool { return en.curBallot.Fast }

// AliveCount returns the failure detector's current live-node estimate
// (including this node).
func (en *Engine) AliveCount() int { return en.aliveCount() }

// Backlog returns how many decided-but-undelivered instances this node
// still has to apply — the queue-resynchronization backlog of §5.6.
func (en *Engine) Backlog() int64 { return int64(en.maxKnown - en.firstUnchosen + 1) }

// owner resolves ballot b to the member node that owns it: round-robin
// over the member index, mapped back through the (arbitrary) member IDs.
func (en *Engine) owner(b Ballot) env.NodeID {
	idx := b.Owner(en.n)
	if idx < 0 {
		return -1
	}
	return en.members[idx]
}

func (en *Engine) aliveCount() int {
	now := en.e.Now()
	horizon := 3 * en.cfg.HeartbeatInterval
	alive := 1 // self
	for id, t := range en.lastSeen {
		if id != en.me && now.Sub(t) <= horizon {
			alive++
		}
	}
	return alive
}

// --- Proposer ----------------------------------------------------------

// Submit proposes one application command for total ordering. Commands
// are batched (group commit) and delivered through Config.Deliver on every
// replica. Submit never blocks; flow control is by MaxInFlight batching,
// with queue pressure graded through AdmissionState.
func (en *Engine) Submit(cmd any) {
	if en.cfg.Learner {
		panic("paxos: Submit on a learner engine")
	}
	en.cmdQueue = append(en.cmdQueue, cmd)
	en.queueBytes += en.cfg.CmdSize(cmd)
	en.pump()
}

// queueLen is the number of commands waiting to be proposed.
func (en *Engine) queueLen() int { return len(en.cmdQueue) - en.qHead }

// pump streams queued commands into the proposal pipeline: full batches
// go out while MaxInFlight slots are free, and a leftover partial batch
// is held for up to BatchDelay to give it a chance to fill. Every path
// into the pipeline runs through here, so the in-flight cap is uniform —
// a timer-driven flush can never overshoot the window.
func (en *Engine) pump() {
	for en.queueLen() >= en.cfg.MaxBatchCmds && len(en.outstanding) < en.cfg.MaxInFlight {
		en.proposeNext(en.cfg.MaxBatchCmds)
	}
	if en.queueLen() > 0 && len(en.outstanding) < en.cfg.MaxInFlight && en.batchTimer == nil {
		en.batchTimer = en.e.After(en.cfg.BatchDelay, func() {
			en.batchTimer = nil
			if n := en.queueLen(); n > 0 && len(en.outstanding) < en.cfg.MaxInFlight {
				if n > en.cfg.MaxBatchCmds {
					n = en.cfg.MaxBatchCmds
				}
				en.proposeNext(n)
			}
			en.pump()
		})
	}
	en.compactQueue()
	en.adm.update(en.queueLen(), en.queueBytes)
}

// proposeNext packs the next n queued commands into one value and
// proposes it. The commands are copied out so the ring slots can be
// reclaimed.
func (en *Engine) proposeNext(n int) {
	cmds := make([]any, n)
	copy(cmds, en.cmdQueue[en.qHead:en.qHead+n])
	for i := en.qHead; i < en.qHead+n; i++ {
		en.cmdQueue[i] = nil // release for GC
	}
	en.qHead += n
	var bytes int64
	for _, c := range cmds {
		bytes += en.cfg.CmdSize(c)
	}
	en.queueBytes -= bytes
	en.nextSeq++
	v := Value{
		ID:   ValueID{Node: en.me, Epoch: en.epoch, Seq: en.nextSeq},
		Cmds: cmds,
		Size: bytes + 64,
	}
	en.outstanding[v.ID.Seq] = &pendingValue{v: v, lastSent: en.e.Now()}
	en.propose(v)
}

// compactQueue reclaims the consumed queue prefix: a drained queue resets
// in place, and a large consumed prefix slides the live suffix down —
// amortized O(1) per command, never O(queue) per batch.
func (en *Engine) compactQueue() {
	switch {
	case en.qHead == 0:
	case en.qHead == len(en.cmdQueue):
		en.cmdQueue = en.cmdQueue[:0]
		en.qHead = 0
	case en.qHead > 1024 && en.qHead > len(en.cmdQueue)/2:
		n := copy(en.cmdQueue, en.cmdQueue[en.qHead:])
		tail := en.cmdQueue[n:]
		for i := range tail {
			tail[i] = nil
		}
		en.cmdQueue = en.cmdQueue[:n]
		en.qHead = 0
	}
}

// AdmissionState returns the proposer's current write-admission grade.
// Callers upstream of Submit use it to pace or hold new writes while the
// local backlog is deep.
func (en *Engine) AdmissionState() AdmissionState { return en.adm.state }

// QueueDepth returns the number of commands waiting behind the
// MaxInFlight window (not yet proposed).
func (en *Engine) QueueDepth() int { return en.queueLen() }

// propose routes a value into the protocol according to the current mode.
func (en *Engine) propose(v Value) {
	if !en.booted {
		return
	}
	switch {
	case en.curBallot.Fast && !en.IsLeader():
		// Fast path: straight to the acceptors.
		en.broadcast(fastProposeMsg{V: v})
	case en.IsLeader():
		en.leaderPropose(v)
	default:
		leader := en.owner(en.curBallot)
		if leader >= 0 && leader != en.me {
			en.e.Send(leader, forwardMsg{V: v})
		}
		// With no leader the value stays outstanding and the retry
		// sweep re-proposes it once a leader emerges.
	}
}

// --- Message handling ---------------------------------------------------

// Handle processes a consensus message and reports whether the message
// belonged to this engine. The layer above (internal/core) multiplexes the
// node's Receive between the engine and its own transfer protocol.
func (en *Engine) Handle(from env.NodeID, msg env.Message) bool {
	switch m := msg.(type) {
	case pingMsg:
		en.onPing(from, m)
	case prepareMsg:
		en.onPrepare(from, m)
	case promiseMsg:
		en.onPromise(from, m)
	case nackMsg:
		en.onNack(from, m)
	case acceptMsg:
		en.onAccept(from, m)
	case acceptedMsg:
		en.onAccepted(from, m)
	case chosenMsg:
		en.onChosen(m.Inst, m.V)
	case anyMsg:
		en.onAny(from, m)
	case fastProposeMsg:
		en.onFastPropose(from, m)
	case forwardMsg:
		en.onForward(from, m)
	case recQueryMsg:
		en.onRecQuery(from, m)
	case recInfoMsg:
		en.onRecInfo(from, m)
	case catchUpReqMsg:
		en.onCatchUpReq(from, m)
	case catchUpReplyMsg:
		en.onCatchUpReply(from, m)
	default:
		return false
	}
	return true
}

func (en *Engine) broadcast(msg env.Message) {
	for _, p := range en.members {
		en.e.Send(p, msg)
	}
}

func (en *Engine) sendPing() {
	m := pingMsg{
		B:             en.curBallot,
		Leader:        en.IsLeader(),
		FirstUnchosen: en.firstUnchosen,
	}
	en.broadcast(m)
	// Heartbeats also flow to attached learners so they track the current
	// ballot (catch-up targeting) and the decided frontier. Learners never
	// answer, so this is one-way.
	for _, l := range en.cfg.Learners {
		en.e.Send(l, m)
	}
}

func (en *Engine) onPing(from env.NodeID, m pingMsg) {
	en.lastSeen[from] = en.e.Now()
	en.noteBallot(m.B)
	if m.Leader {
		if en.curBallot.Less(m.B) {
			en.adoptBallot(m.B)
		}
		if m.B == en.curBallot {
			en.lastLeaderSeen = en.e.Now()
		}
	}
	if m.FirstUnchosen-1 > en.maxKnown {
		en.maxKnown = m.FirstUnchosen - 1
	}
}

// adoptBallot records a higher leadership claim and abandons any local
// leadership.
func (en *Engine) adoptBallot(b Ballot) {
	en.curBallot = b
	en.noteBallot(b)
	en.lastLeaderSeen = en.e.Now()
	if en.owner(b) != en.me {
		en.leader = nil
	}
}

// --- Learner -----------------------------------------------------------

func (en *Engine) onChosen(inst InstanceID, v Value) {
	if inst > en.maxKnown {
		en.maxKnown = inst
	}
	if inst < en.firstUnchosen {
		return // already delivered or compacted
	}
	if _, ok := en.chosen[inst]; ok {
		en.advance()
		return
	}
	en.chosen[inst] = v
	if inst >= en.nextFree {
		en.nextFree = inst + 1
	}
	if en.leader != nil {
		en.leader.onDecided(inst)
	}
	en.advance()
}

// advance delivers the contiguous chosen prefix.
func (en *Engine) advance() {
	for {
		v, ok := en.chosen[en.firstUnchosen]
		if !ok {
			break
		}
		inst := en.firstUnchosen
		en.firstUnchosen++
		en.gapSince = time.Time{}
		if pv, mine := en.outstanding[v.ID.Seq]; mine && pv.v.ID == v.ID {
			delete(en.outstanding, v.ID.Seq)
		}
		if !v.NoOp && en.markDelivered(v.ID) {
			en.cfg.Deliver(inst, v)
		}
	}
	en.pump()
}

// markDelivered records a value id and reports whether it was fresh.
func (en *Engine) markDelivered(id ValueID) bool {
	byEpoch := en.delivered[id.Node]
	if byEpoch == nil {
		byEpoch = make(map[int64]*dedupSet)
		en.delivered[id.Node] = byEpoch
	}
	d := byEpoch[id.Epoch]
	if d == nil {
		d = &dedupSet{over: make(map[int64]bool)}
		byEpoch[id.Epoch] = d
	}
	return d.add(id.Seq)
}

// isDelivered reports whether a value id was already applied.
func (en *Engine) isDelivered(id ValueID) bool {
	byEpoch := en.delivered[id.Node]
	if byEpoch == nil {
		return false
	}
	d := byEpoch[id.Epoch]
	return d != nil && d.has(id.Seq)
}

// dedupSet tracks delivered per-node sequence numbers: everything <= base
// plus a sparse overflow set.
type dedupSet struct {
	base int64
	over map[int64]bool
}

// add records seq and reports whether it was new.
func (d *dedupSet) add(seq int64) bool {
	if seq <= d.base || d.over[seq] {
		return false
	}
	d.over[seq] = true
	for d.over[d.base+1] {
		d.base++
		delete(d.over, d.base)
	}
	return true
}

func (d *dedupSet) has(seq int64) bool { return seq <= d.base || d.over[seq] }

// --- Catch-up ----------------------------------------------------------

func (en *Engine) requestCatchUp() {
	if !en.booted {
		return
	}
	en.catchUpAt = en.e.Now()
	target := en.owner(en.curBallot)
	if target < 0 || target == en.me {
		// Pick the lowest-id recently seen member (deterministic).
		for _, id := range en.members {
			t, ok := en.lastSeen[id]
			if ok && id != en.me && en.e.Now().Sub(t) <= 3*en.cfg.HeartbeatInterval {
				target = id
				break
			}
		}
	}
	if target < 0 || target == en.me {
		return
	}
	en.e.Send(target, catchUpReqMsg{From: en.firstUnchosen, Max: en.cfg.CatchUpChunk})
}

func (en *Engine) onCatchUpReq(from env.NodeID, m catchUpReqMsg) {
	reply := catchUpReplyMsg{FirstAvail: en.retainedFrom, LastKnown: en.maxKnown}
	start := m.From
	if start < en.retainedFrom {
		start = en.retainedFrom
	}
	for i := start; len(reply.Entries) < m.Max; i++ {
		v, ok := en.chosen[i]
		if !ok {
			break
		}
		reply.Entries = append(reply.Entries, chosenEntry{Inst: i, V: v})
	}
	en.e.Send(from, reply)
}

func (en *Engine) onCatchUpReply(from env.NodeID, m catchUpReplyMsg) {
	if m.LastKnown > en.maxKnown {
		en.maxKnown = m.LastKnown
	}
	gap := m.FirstAvail > en.firstUnchosen && en.firstUnchosen <= en.maxKnown
	for _, e := range m.Entries {
		en.onChosen(e.Inst, e.V)
	}
	if gap && m.FirstAvail > en.firstUnchosen {
		// The peer compacted past what we need: log replay alone
		// cannot re-synchronize this replica.
		if en.cfg.OnCatchUpGap != nil {
			en.cfg.OnCatchUpGap(m.FirstAvail)
		}
		return
	}
	if en.firstUnchosen <= en.maxKnown {
		// Still behind: keep streaming.
		en.requestCatchUp()
	}
}

// SkipTo abandons delivery below floor after an out-of-band state
// transfer (remote checkpoint install): the layer above has already
// restored a state covering all instances < floor.
func (en *Engine) SkipTo(floor InstanceID) {
	if floor <= en.firstUnchosen {
		return
	}
	for i := en.firstUnchosen; i < floor; i++ {
		delete(en.chosen, i)
	}
	en.firstUnchosen = floor
	if en.retainedFrom < floor {
		en.retainedFrom = floor
	}
	if en.nextFree < floor {
		en.nextFree = floor
	}
	en.advance()
	en.requestCatchUp()
}

// DeliveredState is the checkpointable dedup summary: per node and
// incarnation epoch, the highest contiguously applied value sequence.
type DeliveredState map[env.NodeID]map[int64]int64

// SetDelivered seeds the dedup state after a state transfer so commands
// already contained in an installed checkpoint are not re-applied when
// they reappear as duplicates.
func (en *Engine) SetDelivered(state DeliveredState) {
	for node, byEpoch := range state {
		dst := en.delivered[node]
		if dst == nil {
			dst = make(map[int64]*dedupSet)
			en.delivered[node] = dst
		}
		for epoch, seq := range byEpoch {
			d := dst[epoch]
			if d == nil {
				d = &dedupSet{over: make(map[int64]bool)}
				dst[epoch] = d
			}
			if d.base < seq {
				d.base = seq
				for s := range d.over {
					if s <= seq {
						delete(d.over, s)
					}
				}
			}
		}
	}
}

// DeliveredSeqs returns the dedup summary for embedding in checkpoints.
func (en *Engine) DeliveredSeqs() DeliveredState {
	out := make(DeliveredState, len(en.delivered))
	for node, byEpoch := range en.delivered {
		m := make(map[int64]int64, len(byEpoch))
		for epoch, d := range byEpoch {
			m[epoch] = d.base
		}
		out[node] = m
	}
	return out
}

// --- Compaction --------------------------------------------------------

// Compact discards consensus state for instances <= through, which the
// layer above has made durable in an application checkpoint. The open
// acceptor state is re-written as a compaction barrier so the WAL prefix
// can be truncated.
func (en *Engine) Compact(through InstanceID) {
	if through < en.retainedFrom {
		return
	}
	for i := en.retainedFrom; i <= through; i++ {
		delete(en.chosen, i)
		delete(en.accepted, i)
		delete(en.instPromised, i)
	}
	en.retainedFrom = through + 1
	rec := compactRec{
		Floor:        en.retainedFrom,
		Promised:     en.promised,
		InstPromised: make(map[InstanceID]Ballot, len(en.instPromised)),
	}
	for i, b := range en.instPromised {
		rec.InstPromised[i] = b
	}
	var size int64 = 128
	// Sorted export: the compaction barrier is a WAL record, and its
	// accepted list must be byte-identical across replays of the same
	// history (detorder invariant).
	for _, i := range detsort.Keys(en.accepted) {
		a := en.accepted[i]
		rec.Accepted = append(rec.Accepted, a)
		size += 32 + a.V.Size
	}
	barrierIdx := en.records
	en.appendRecord(env.Record{Kind: "compact", Data: rec, Size: size}, func(error) {
		en.e.Storage().Truncate(barrierIdx, nil)
	})
}

// appendRecord writes a durable record through the WAL writer (which
// applies the configured SyncMode) and tracks the global record index.
func (en *Engine) appendRecord(rec env.Record, done func(error)) {
	en.records++
	en.wal.append(rec, done)
}

// --- Housekeeping ------------------------------------------------------

func (en *Engine) sweep() {
	if !en.booted {
		return
	}
	now := en.e.Now()

	// Election: suspect the leader after a staggered timeout. Learners
	// never bid — they observe whichever ballot the voters establish.
	timeout := en.cfg.LeaderTimeout + time.Duration(int64(en.me))*en.cfg.LeaderTimeout/2
	if !en.cfg.Learner && !en.IsLeader() && (en.leader == nil || !en.leader.established) &&
		now.Sub(en.lastLeaderSeen) > timeout && en.aliveCount() >= ClassicQuorum(en.n) {
		if en.leader == nil || now.Sub(en.leader.startedAt) > en.cfg.LeaderTimeout {
			en.startPrepare()
		}
	}

	// Leader duties: mode changes, gap recovery, proposal retries.
	if en.leader != nil && en.leader.established {
		en.leaderSweep(now)
	}

	// Value retries: outstanding batches not yet learned (sorted for
	// deterministic message order).
	var retrySeqs []int64
	for seq, pv := range en.outstanding {
		if now.Sub(pv.lastSent) > en.cfg.RetryTimeout {
			retrySeqs = append(retrySeqs, seq)
		}
	}
	sort.Slice(retrySeqs, func(i, j int) bool { return retrySeqs[i] < retrySeqs[j] })
	for _, seq := range retrySeqs {
		pv := en.outstanding[seq]
		pv.lastSent = now
		en.propose(pv.v)
	}

	// Catch-up: behind the cluster or stuck on a gap.
	behind := en.maxKnown >= en.firstUnchosen
	if behind {
		if en.gapSince.IsZero() {
			en.gapSince = now
		}
		stuck := now.Sub(en.gapSince) > 2*en.cfg.SweepInterval
		idle := now.Sub(en.catchUpAt) > 4*en.cfg.SweepInterval
		if stuck && idle {
			en.requestCatchUp()
		}
	} else {
		en.gapSince = time.Time{}
	}
}
