package paxos

// AdmissionConfig parameterizes the proposer's write-admission controller
// (rockyardkv write_controller idiom: graded slowdown/stop triggers keyed
// on backlog depth). The controller watches the local command queue — the
// commands waiting behind the MaxInFlight window — and grades the
// proposer's health so the layer above (internal/webtier) can shed or
// delay writes before they reach the retry-timeout cliff: overload then
// degrades to queueing latency instead of timeouts.
//
// Zero thresholds take defaults derived from the proposer window
// W = MaxInFlight × MaxBatchCmds (the number of commands the pipeline
// absorbs per round trip): SlowdownCmds = 8·W, StopCmds = 32·W, and the
// byte thresholds scale those by the default command size.
type AdmissionConfig struct {
	// SlowdownCmds is the queued-command depth at which the controller
	// reports AdmissionSlowdown.
	SlowdownCmds int

	// StopCmds is the queued-command depth at which the controller
	// reports AdmissionStop.
	StopCmds int

	// SlowdownBytes and StopBytes are the equivalent thresholds on
	// queued bytes; whichever trigger (count or bytes) fires first wins.
	SlowdownBytes int64
	StopBytes     int64
}

func (a AdmissionConfig) withDefaults(window int, cmdSize int64) AdmissionConfig {
	if a.SlowdownCmds == 0 {
		a.SlowdownCmds = 8 * window
	}
	if a.StopCmds == 0 {
		a.StopCmds = 32 * window
	}
	if a.SlowdownBytes == 0 {
		a.SlowdownBytes = int64(a.SlowdownCmds) * cmdSize
	}
	if a.StopBytes == 0 {
		a.StopBytes = int64(a.StopCmds) * cmdSize
	}
	return a
}

// AdmissionState is the proposer's current write-admission grade.
type AdmissionState int

const (
	// AdmissionClear admits writes at full rate.
	AdmissionClear AdmissionState = iota

	// AdmissionSlowdown signals that the backlog passed the slowdown
	// trigger: callers should pace new writes (the web tier stretches
	// its submit path) but nothing is refused.
	AdmissionSlowdown

	// AdmissionStop signals that the backlog passed the stop trigger:
	// callers must hold new writes until the state clears.
	AdmissionStop
)

// String implements fmt.Stringer.
func (s AdmissionState) String() string {
	switch s {
	case AdmissionClear:
		return "clear"
	case AdmissionSlowdown:
		return "slowdown"
	case AdmissionStop:
		return "stop"
	default:
		return "unknown"
	}
}

// admissionController grades queue pressure with hysteresis: a state
// escalates as soon as a trigger is crossed but de-escalates only once
// the backlog falls below half that trigger, so the grade does not
// flap at the threshold while the queue oscillates around it.
type admissionController struct {
	cfg   AdmissionConfig
	state AdmissionState
}

// update re-grades from the current queue depth and bytes and reports the
// (possibly unchanged) state.
func (a *admissionController) update(cmds int, bytes int64) AdmissionState {
	stop := cmds >= a.cfg.StopCmds || bytes >= a.cfg.StopBytes
	slow := cmds >= a.cfg.SlowdownCmds || bytes >= a.cfg.SlowdownBytes
	switch a.state {
	case AdmissionStop:
		if cmds < a.cfg.StopCmds/2 && bytes < a.cfg.StopBytes/2 {
			if slow {
				a.state = AdmissionSlowdown
			} else {
				a.state = AdmissionClear
			}
		}
	case AdmissionSlowdown:
		if stop {
			a.state = AdmissionStop
		} else if cmds < a.cfg.SlowdownCmds/2 && bytes < a.cfg.SlowdownBytes/2 {
			a.state = AdmissionClear
		}
	default:
		if stop {
			a.state = AdmissionStop
		} else if slow {
			a.state = AdmissionSlowdown
		}
	}
	return a.state
}
