package paxos

import (
	"fmt"
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/sim"
	"robuststore/internal/xrand"
)

// TestRandomFaultSchedules is the safety stress test: across many seeded
// scenarios with random crashes, restarts and message loss, in both
// classic and fast mode, the delivered sequences of all nodes must remain
// mutually consistent (prefix relation, no duplicates, one value per
// instance). Liveness is asserted only for scenarios that end with a
// quiet, healed period.
func TestRandomFaultSchedules(t *testing.T) {
	seeds := 16
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomSchedule(t, uint64(seed))
		})
	}
}

func runRandomSchedule(t *testing.T, seed uint64) {
	t.Helper()
	rng := xrand.New(seed*2654435761 + 17)
	n := 3 + rng.Intn(3)*2 // 3, 5 or 7 nodes
	fast := rng.Intn(2) == 0
	drop := 0.0
	if rng.Intn(3) == 0 {
		drop = 0.03
	}
	c := newCluster(t, n, fast, seed+100, sim.NetConfig{DropRate: drop})

	// Random workload: commands submitted at random nodes over 20 s.
	total := 100 + rng.Intn(100)
	for i := 0; i < total; i++ {
		at := 2*time.Second + time.Duration(rng.Intn(20000))*time.Millisecond
		c.submit(at, rng.Intn(n), fmt.Sprintf("cmd-%d", i))
	}

	// Random fault schedule: up to n-majority concurrent crashes, with
	// restarts a few seconds later.
	faults := rng.Intn(4)
	down := 0
	for f := 0; f < faults; f++ {
		victim := env.NodeID(rng.Intn(n))
		crashAt := 3*time.Second + time.Duration(rng.Intn(15000))*time.Millisecond
		upAt := crashAt + 2*time.Second + time.Duration(rng.Intn(8000))*time.Millisecond
		c.s.At(c.s.Now().Add(crashAt), func() { c.s.Crash(victim) })
		c.s.At(c.s.Now().Add(upAt), func() { c.s.Restart(victim) })
		down++
	}

	// Run the active phase, then a healed quiet phase for convergence.
	c.s.RunFor(30 * time.Second)
	for id := 0; id < n; id++ {
		c.s.Restart(env.NodeID(id))
	}
	c.s.RunFor(30 * time.Second)

	c.checkConsistency()

	// Liveness: every submitted command that was accepted by a live
	// node must eventually appear everywhere. Commands submitted while
	// their target node was crashed are legitimately lost (the client
	// saw an error), so require only that all nodes agree and that the
	// system made progress.
	min := len(c.delivered[0])
	for id := 1; id < n; id++ {
		if l := len(c.delivered[id]); l < min {
			min = l
		}
	}
	if min == 0 && faults < n/2 {
		t.Fatalf("no progress at all (n=%d fast=%v faults=%d)", n, fast, faults)
	}
	// After the healed quiet phase all nodes must have converged to the
	// same length (catch-up completed).
	for id := 1; id < n; id++ {
		if len(c.delivered[id]) != len(c.delivered[0]) {
			t.Fatalf("node %d has %d delivered, node 0 has %d (no convergence)",
				id, len(c.delivered[id]), len(c.delivered[0]))
		}
	}
}

// TestEngineStatusAccessors exercises the introspection surface.
func TestEngineStatusAccessors(t *testing.T) {
	c := newCluster(t, 3, true, 55, sim.NetConfig{})
	c.submit(2*time.Second, 0, "x")
	c.s.RunFor(5 * time.Second)
	var leaders int
	for id := 0; id < 3; id++ {
		en := c.engines[id]
		if en.IsLeader() {
			leaders++
		}
		if en.CurrentBallot().Seq < 0 {
			t.Errorf("node %d never saw a ballot", id)
		}
		if en.AliveCount() != 3 {
			t.Errorf("node %d alive count = %d", id, en.AliveCount())
		}
		if en.FirstUnchosen() < 1 {
			t.Errorf("node %d firstUnchosen = %d", id, en.FirstUnchosen())
		}
		if en.Backlog() > 1 {
			t.Errorf("node %d backlog = %d after quiesce", id, en.Backlog())
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want exactly 1", leaders)
	}
	if !c.engines[0].FastActive() {
		t.Error("fast mode should be active with all nodes alive")
	}
}

// TestModeFallbackOnCrash: with 5 nodes, fast mode requires ⌈15/4⌉ = 4
// alive; killing two must switch the ballot to classic, and recovery must
// switch it back.
func TestModeFallbackOnCrash(t *testing.T) {
	c := newCluster(t, 5, true, 56, sim.NetConfig{})
	c.submit(2*time.Second, 0, "warm")
	c.s.RunFor(4 * time.Second)
	if !c.engines[0].FastActive() {
		t.Fatal("fast mode should start active")
	}
	c.s.Crash(3)
	c.s.Crash(4)
	// Keep some traffic flowing so the mode change matters.
	for i := 0; i < 20; i++ {
		c.submit(time.Duration(i)*200*time.Millisecond, i%3, fmt.Sprintf("c-%d", i))
	}
	c.s.RunFor(10 * time.Second)
	if c.engines[0].FastActive() {
		t.Fatal("fast mode must fall back to classic below ⌈3N/4⌉ alive")
	}
	c.s.Restart(3)
	c.s.Restart(4)
	c.s.RunFor(10 * time.Second)
	if !c.engines[0].FastActive() {
		t.Fatal("fast mode must resume once ⌈3N/4⌉ are alive again")
	}
	c.checkConsistency()
}

// TestCompactionAndCatchUpAfterTruncation: a node that falls behind a
// compaction horizon must hit OnCatchUpGap rather than stall silently.
func TestCompactionBoundsServing(t *testing.T) {
	c := newCluster(t, 3, false, 57, sim.NetConfig{})
	const total = 60
	for i := 0; i < total; i++ {
		c.submit(2*time.Second+time.Duration(i)*20*time.Millisecond, i%3,
			fmt.Sprintf("cmd-%d", i))
	}
	c.s.RunFor(10 * time.Second)
	// Compact node 0 and 1 through most of the log.
	c.s.At(c.s.Now(), func() {
		c.engines[0].Compact(c.engines[0].FirstUnchosen() - 2)
		c.engines[1].Compact(c.engines[1].FirstUnchosen() - 2)
	})
	c.s.RunFor(2 * time.Second)
	// A fresh node 2 incarnation with floor 0 cannot be served the
	// prefix by 0/1 anymore; it must learn that via the gap callback
	// (here we just verify the cluster stays consistent and live).
	c.s.Crash(2)
	c.s.Restart(2)
	c.submit(time.Second, 0, "after")
	c.s.RunFor(15 * time.Second)
	c.checkConsistency()
	if len(c.delivered[0]) != total+1 {
		t.Fatalf("node 0 delivered %d, want %d", len(c.delivered[0]), total+1)
	}
}
