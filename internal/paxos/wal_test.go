package paxos

import (
	"fmt"
	"testing"
	"time"

	"robuststore/internal/env"
	"robuststore/internal/sim"
)

// TestWALReplayRestoresAcceptorState: a crashed acceptor must come back
// with its promises and votes intact (never contradicting its earlier
// replies). We crash a node right after it voted, restart it, and have a
// new leader rely on its reported state.
func TestWALReplayRestoresAcceptorState(t *testing.T) {
	c := newCluster(t, 3, false, 71, sim.NetConfig{})
	c.submit(2*time.Second, 0, "a")
	c.submit(2100*time.Millisecond, 1, "b")
	c.s.RunFor(5 * time.Second)

	// Crash node 2 (an acceptor), restart it: its WAL must reproduce
	// its accepted map.
	before := len(c.engines[2].accepted)
	if before == 0 {
		t.Fatal("node 2 accepted nothing before crash")
	}
	c.s.Crash(2)
	c.s.Restart(2)
	c.s.RunFor(3 * time.Second)
	after := c.engines[2]
	if len(after.accepted) < before {
		t.Fatalf("WAL replay lost votes: %d < %d", len(after.accepted), before)
	}
	if after.promised.Seq < 0 {
		t.Fatal("WAL replay lost the promise")
	}
	c.checkConsistency()
}

// TestCompactRecBarrier: after Compact, a restart replays only the
// compaction barrier plus later records, and the acceptor state for open
// instances survives.
func TestCompactRecBarrier(t *testing.T) {
	c := newCluster(t, 3, false, 72, sim.NetConfig{})
	const total = 40
	for i := 0; i < total; i++ {
		c.submit(2*time.Second+time.Duration(i)*20*time.Millisecond, i%3,
			fmt.Sprintf("cmd-%d", i))
	}
	c.s.RunFor(8 * time.Second)

	en := c.engines[1]
	through := en.FirstUnchosen() - 5
	c.s.At(c.s.Now(), func() { en.Compact(through) })
	c.s.RunFor(2 * time.Second)

	// The WAL on disk must have been truncated at the barrier.
	if fi := c.s.Storage(1).FirstIndex(); fi == 0 {
		t.Fatal("storage was not truncated")
	}
	// Chosen entries below the floor are gone; later ones retained.
	if _, ok := en.chosen[through]; ok {
		t.Fatal("compacted chosen entry retained")
	}
	if _, ok := en.chosen[through+1]; !ok {
		t.Fatal("retained chosen entry missing")
	}

	// Restart and make sure the node still works (replays from the
	// barrier) and the cluster keeps agreeing.
	c.s.Crash(1)
	c.s.Restart(1)
	c.submit(time.Second, 0, "post-compact")
	c.s.RunFor(10 * time.Second)
	c.checkConsistency()
	if len(c.delivered[0]) != total+1 {
		t.Fatalf("node 0 delivered %d, want %d", len(c.delivered[0]), total+1)
	}
}

// TestBackpressurePacksBatches: with MaxInFlight saturated, queued
// commands must be packed into multi-command batches rather than
// one-per-value (the group-commit growth that keeps per-message overhead
// bounded under load).
func TestBackpressurePacksBatches(t *testing.T) {
	batches := make(map[int]int) // batch size -> count
	c := &testCluster{
		t:         t,
		n:         3,
		engines:   make([]*Engine, 3),
		delivered: make([][]string, 3),
		instOf:    make([]map[InstanceID]string, 3),
	}
	c.s = sim.New(sim.Config{Seed: 73})
	for i := 0; i < 3; i++ {
		id := i
		c.s.AddNode(func() env.Node { return &engineNode{c: c, id: id} })
	}
	testFast = false
	c.s.StartAll()

	// Wrap node 0's deliver to record batch sizes.
	c.s.After(time.Second, func() {
		en := c.engines[0]
		orig := en.cfg.Deliver
		en.cfg.Deliver = func(inst InstanceID, v Value) {
			batches[len(v.Cmds)]++
			orig(inst, v)
		}
	})
	// Burst 300 commands at one node in a tight window.
	c.s.After(2*time.Second, func() {
		for i := 0; i < 300; i++ {
			c.engines[0].Submit(fmt.Sprintf("cmd-%d", i))
		}
	})
	c.s.RunFor(20 * time.Second)
	c.checkConsistency()
	if got := len(c.delivered[0]); got != 300 {
		t.Fatalf("delivered %d, want 300", got)
	}
	multi := 0
	for size, n := range batches {
		if size > 1 {
			multi += n
		}
	}
	if multi == 0 {
		t.Fatalf("no multi-command batches under burst load: %v", batches)
	}
}

// TestSubmitWhileUnbooted: commands submitted before the WAL replay
// finishes must not be lost (they batch and go out once booted).
func TestSubmitWhileUnbooted(t *testing.T) {
	c := newCluster(t, 3, false, 74, sim.NetConfig{})
	// Submit immediately — the engines boot asynchronously (disk read).
	c.s.At(c.s.Now(), func() {
		if en := c.engines[0]; en != nil {
			en.Submit("early")
		}
	})
	c.s.RunFor(8 * time.Second)
	for id := 0; id < 3; id++ {
		c.requireDelivered(id, 1)
	}
}
