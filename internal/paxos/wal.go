package paxos

import (
	"time"

	"robuststore/internal/env"
)

// SyncMode selects how the engine flushes WAL records to stable storage.
// The tradeoff mirrors kevo-style WAL sync policies: Batch amortizes the
// dominant per-flush seek cost across concurrently pending records (group
// commit, §5.2 of the paper), Immediate gives the lowest per-record
// latency at low concurrency, and None trades acceptor durability for raw
// speed.
type SyncMode int

const (
	// SyncBatch (the default) coalesces records that arrive while a
	// flush is in flight — or within SyncDelay, or until SyncBytes
	// accumulate — into one Storage.AppendBatch call, so the whole group
	// pays one sync latency. Completion callbacks still run only after
	// the records are durable, preserving the WAL-before-ack invariant.
	SyncBatch SyncMode = iota

	// SyncImmediate issues one Storage.Append per record, the pre-group-
	// commit behaviour. The storage layer may still merge appends that
	// happen to overlap, but the engine adds no coalescing of its own.
	SyncImmediate

	// SyncNone acknowledges records before they are durable: completion
	// callbacks run immediately and the records are written out
	// asynchronously. A crash loses the tail of the log, so promises and
	// accepts can be forgotten — this mode is safe only when losing one
	// replica's recent WAL is acceptable (e.g. measurement runs) and
	// exists to bound the cost of durability in experiments.
	SyncNone
)

// String implements fmt.Stringer.
func (m SyncMode) String() string {
	switch m {
	case SyncBatch:
		return "batch"
	case SyncImmediate:
		return "immediate"
	case SyncNone:
		return "none"
	default:
		return "unknown"
	}
}

// walWriter sits between the engine and env.Storage and implements the
// SyncMode policy. All methods run on the node's executor. Batches retain
// submission order and AppendBatch completes groups in order, so record
// ordering on disk is identical to SyncImmediate — only the flush
// boundaries move.
type walWriter struct {
	e         env.Env
	mode      SyncMode
	syncBytes int64
	syncDelay time.Duration

	buf      []env.Record
	dones    []func(error)
	bufBytes int64
	inFlight bool      // an AppendBatch is awaiting durability
	timer    env.Timer // pending SyncDelay flush
	armed    bool      // a flush is scheduled (timer or Post)
}

func newWALWriter(e env.Env, mode SyncMode, syncBytes int64, syncDelay time.Duration) *walWriter {
	return &walWriter{e: e, mode: mode, syncBytes: syncBytes, syncDelay: syncDelay}
}

// append writes one record under the configured policy. done (nil
// allowed) runs on the executor — after durability for SyncBatch and
// SyncImmediate, immediately for SyncNone.
func (w *walWriter) append(rec env.Record, done func(error)) {
	switch w.mode {
	case SyncImmediate:
		w.e.Storage().Append(rec, done)
	case SyncNone:
		if done != nil {
			w.e.Post(func() { done(nil) })
		}
		w.buffer(rec, nil)
	default: // SyncBatch
		w.buffer(rec, done)
	}
}

func (w *walWriter) buffer(rec env.Record, done func(error)) {
	w.buf = append(w.buf, rec)
	w.dones = append(w.dones, done)
	w.bufBytes += rec.Size
	w.maybeFlush()
}

// maybeFlush schedules a flush of the buffered records unless one is
// already pending or in flight. While a flush is in flight further
// records pile into buf and go out as the next group — that queue-behind-
// the-flush window is where coalescing comes from.
func (w *walWriter) maybeFlush() {
	if w.inFlight || w.armed || len(w.buf) == 0 {
		return
	}
	if w.bufBytes >= w.syncBytes || w.syncDelay <= 0 {
		// Flush at the next executor step (not inline) so records
		// appended by the same event share the group.
		w.armed = true
		w.e.Post(w.flushNow)
		return
	}
	w.armed = true
	w.timer = w.e.After(w.syncDelay, w.flushNow)
}

func (w *walWriter) flushNow() {
	w.armed = false
	w.timer = nil
	if w.inFlight || len(w.buf) == 0 {
		return
	}
	recs, dones := w.buf, w.dones
	w.buf, w.dones, w.bufBytes = nil, nil, 0
	w.inFlight = true
	w.e.Storage().AppendBatch(recs, func(err error) {
		w.inFlight = false
		for _, d := range dones {
			if d != nil {
				d(err)
			}
		}
		w.maybeFlush()
	})
}
