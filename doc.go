// Package robuststore is a from-scratch Go reproduction of "Dynamic
// Content Web Applications: Crash, Failover, and Recovery Analysis"
// (Vieira, Buzato, Zwaenepoel — DSN 2009): the Treplica replication
// middleware (Paxos + Fast Paxos, asynchronous persistent queue,
// replicated state machine with checkpoint-based recovery), the TPC-W
// on-line bookstore retrofitted onto it (RobustStore), and the full
// dependability-benchmark harness — workloads, faultloads and measures —
// that regenerates every table and figure of the paper's evaluation.
//
// Beyond the paper, the store scales out horizontally: internal/shard
// hash-partitions the state across N independent Paxos groups behind a
// deterministic key router, the web tier routes client sessions to their
// owning group, and both the live command (cmd/robuststore -shards) and
// the benchmark harness (BenchmarkShardScaling) expose the
// throughput-vs-shard-count dimension.
//
// Routing is explicit, epoch-versioned state, not arithmetic: a
// shard.RoutingTable maps hash-space slices to groups (epoch 0
// reproduces the historical hash%N mapping bit for bit, golden-tested),
// and live migration advances the epoch without downtime. Rebalance —
// on both the generic store (shard.Store.Rebalance) and the web tier
// (webtier.Cluster.Rebalance, cmd/robuststore -rebalance, cmd/experiment
// -run rebalance) — boots a new group, drains and fences the source
// logs with ordered barriers, streams the moving slices' rows through
// the ordered log as keyed snapshots (core.PartitionedMachine,
// tpcw's ExportOwned/ImportOwned/DropOwned), and publishes the next
// epoch with one atomic cutover; writes to moving keys are delayed by
// the migration window, never failed, and the proxy transparently
// re-routes requests that race the cutover (WrongEpoch redirects).
//
// Checkpoints are incremental: a state machine that implements
// core.DeltaSnapshotter (the bookstore does, via per-table dirty-key
// tracking) has its steady-state checkpoints taken as delta layers —
// only the rows dirtied since the previous checkpoint — chained onto the
// last full base image, LSM-style. The durable layout is a versioned
// base snapshot (ckpt.base.<seq>), delta layers (ckpt.delta.<seq>.<k>)
// and a manifest (the meta snapshot) naming the chain; the manifest
// write is the atomic commit point, so a crash anywhere — mid-delta,
// mid-compaction, between layer and manifest — leaves a consistent
// (base, chain) prefix, never a torn chain. The chain folds back into a
// fresh base when it exceeds core.Config.MaxDeltaChain layers or
// MaxChainFraction of the base size, and a PartitionDrop (shard
// rebalance) forces the fold so dropped rows cannot resurrect from a
// stale layer. Recovery restores base + chain; the remote-snapshot
// fallback streams only the layers a catching-up peer is missing.
// Steady-state checkpoint writes shrink from O(state) to O(recent
// writes) — ~140× under the standard load — freeing disk bandwidth for
// the WAL group-commit pipeline; machines without the capability (and
// core.Config.FullCheckpoints) keep the paper's monolithic path,
// bit for bit. cmd/experiment -run checkpoint sweeps the checkpoint
// interval comparing both modes (the Figure 6 trade-off), and
// BenchmarkCheckpointRecovery writes BENCH_checkpoint.json with the
// recovery/throughput/checkpoint-I/O trajectory.
//
// The ordering pipeline itself is batched, coalesced and pipelined:
// consensus proposals stream into consecutive instance slots up to
// paxos.Config.MaxInFlight deep — a uniform backpressure bound no
// proposal path can overshoot — while acceptor WAL records coalesce into
// shared group commits under paxos.SyncMode (Batch, the default, pays one
// flush for every record pending behind the in-flight sync, with
// SyncBytes/SyncDelay thresholds; Immediate is the per-record path;
// None trades one replica's WAL tail for speed in measurement runs). The
// invariants hold regardless of mode or depth: the learner delivers in
// instance order, and every promise/accept is durable before its reply
// leaves the node (WAL-before-ack) except under SyncNone. Above the
// engine, a rockyardkv-style write-admission controller grades the local
// command backlog (slowdown/stop thresholds with hysteresis,
// paxos.AdmissionConfig) and the web tier paces or holds writes at the
// tier boundary (core.Replica.AdmissionHint), so overload degrades to
// queueing latency instead of retry-timeout storms. On the same simulated
// disk this moves one group from ~3.9k to ~45k+ committed actions/s
// (BenchmarkBatching writes BENCH_batching.json: actions/s across
// SyncMode × MaxInFlight at 1 and 4 shards; cmd/experiment -run batching
// prints the matrix).
//
// The read path scales out independently of the write quorums:
// webtier.Config.Readers boots learner-backed read-only servers per
// group — full application servers whose paxos engine is a non-voting
// learner (paxos.Config.Learner): it receives the voters' learn stream
// and checkpoints and applies the ordered log, but never votes, proposes
// or counts toward quorum, so added readers cost no WAL-quorum latency.
// Bounded staleness and read-your-writes ride on the applied index:
// every write ack carries its commit index, the proxy folds it into a
// per-session high-water mark and attaches it as a fence on the
// session's subsequent reads, and the serving replica runs a fenced read
// only once lastApplied reaches the fence (core.Replica.ReadAt — bounded
// wait, then a TooStale reply the proxy transparently re-serves on the
// voters; core.Replica.InspectAt pins point-in-time audit reads to a log
// index). Read dispatch balances per-request across voters + readers by
// least outstanding requests (rotation breaks ties) instead of pinning
// by client hash, so a hot client's reads spread over the read-serving
// set and queues drain toward the nodes with headroom; writes keep hash
// affinity and go to voters only. The fence engages at every Readers
// setting — with Readers=0 the read-serving set is the group's voters,
// so a session's fenced reads spread across voting non-leader replicas
// (and keep read-your-writes on whichever trailing voter they land)
// instead of pinning to the client hash. The learner fault family — lagging
// learner (flaky links), learner severed from its group while still
// serving (OpGroupIsolate, the staleness worst case), a leader crash
// racing in-flight fences — joins the faultload DSL, staleness is
// accounted per group (GroupReport.ReadsServed/FenceWaits/StaleServes)
// with a serve-time fence-violation counter the fault suite asserts
// stays zero, and cmd/experiment -run readscale plus BenchmarkReadScale
// (BENCH_readscale.json) measure read actions/s against read-serving
// node count — ≥2× from 3 voters to 3 voters + 3 learners under the
// Browsing mix.
//
// The single-shard invariant is lifted: one logical action can span
// Paxos groups atomically, via two-phase commit whose every protocol
// step is an ordered log record (core/txn.go). A participant group
// orders a core.TxnPrepare carrying its branch — applying it validates
// against local state (core.TxnStager), stages the action without
// executing it, and blocks the branch's conflict keys
// (core.Replica.TxnBlocks) so the tier boundary holds conflicting
// writes until the outcome's log position decides what the branch
// observes. The coordinator Paxos-commits a core.TxnDecision in its own
// home group BEFORE replying or releasing the outcome; the record is
// first-writer-wins, so a presumed-abort inquiry racing the real commit
// resolves to whichever ordered first and every reader agrees.
// Participants then order core.TxnCommit/TxnAbort — commit executes the
// staged branch at the outcome record's position, abort discards it,
// and either way duplicates degrade to ordered no-ops. All of it is
// replayable and checkpoint-carried (the prepared set, terminal set and
// decision map travel with the application snapshot), recovery is
// record-driven, never memory-driven: a stranded participant inquires
// at the home group after a grace (recording a presumed abort if no
// decision exists), a restarting replica re-arms a resolution loop for
// every staged branch at prepare-apply time (core.Config.OnTxnStaged —
// readiness rescans alone miss a prepare that replays late), and
// shard.Store.ResolveStranded drains abandoned branches on the blocking
// API, whose shard.Store.ExecuteTxn is the goroutine-facing coordinator
// the livenet -race audit hammers. The web tier drives the same records
// event-style (webtier/txn.go) behind the first real multi-shard
// workloads — cross-session gift orders debiting one group and
// delivering on another, admin inventory sweeps repricing item sets
// across groups — while a transaction that collapses to one group takes
// the plain submit path, bit-identical to the pre-transaction tier
// (equivalence-tested, like Shards=1 and Readers=0). The txn fault
// scenarios (coordinator crash, coordinator–participant partition,
// participant crash holding a prepared branch) run under cmd/experiment
// -run txn with per-group commit/abort/blocked-time counters
// (GroupReport.TxnCommits/TxnAborts/TxnBlockedSec) and an
// exactly-once audit asserting nothing is lost, duplicated or
// half-applied; BenchmarkTxn writes BENCH_txn.json.
//
// The dependability benchmark covers the sharded deployment too: a
// composable faultload DSL (exp.Faultload — victim selectors × schedule)
// subsumes the paper's §5.4–5.6 faultloads and adds sharded scenarios
// (one member of every group, rolling crashes, whole-group outage until
// manual recovery), with per-group + aggregate availability,
// performability and recovery-window reports (RunResult.PerGroup,
// cmd/experiment -run sharded, BenchmarkShardedRecovery).
//
// Faultloads reach beyond crashes — the paper's "other fault types"
// future work: OpPartition/OpHeal schedule network partitions (symmetric
// or asymmetric one-way loss, victims chosen by the selectors plus the
// late-bound Leader(group) and quorum-preserving Minority(group)), and
// OpDiskSlow/OpDiskRestore degrade a victim's disk live by a factor (the
// failing-disk straggler that drags group commit and checkpoints without
// tripping crash detection). Partitions are handle-based and composable
// on both runtimes — the simulator refcounts directed link blocks, and
// livenet gained an equivalent message-filter layer, so the same
// scenarios run on real goroutines — and active partition sets persist:
// a node added mid-partition (live rebalance) joins the majority side
// instead of straddling the split. The standard scenarios — leader
// isolation, minority split, whole-group isolation (the proxy↔group path
// severed), asymmetric one-way loss, slow-disk straggler — report
// partition/degradation windows beside the recovery windows
// (metrics.FaultWindow, GroupReport.PartitionSec/DegradedSec;
// cmd/experiment -run partition | slowdisk), and
// BenchmarkPartitionRecovery writes BENCH_partition.json with
// detection/failover and post-heal reabsorption times. Between the severed
// and the healthy link sits the flaky one: OpLinkLoss/OpLinkRestore (the
// FlakyLink scenario) schedule probabilistic per-link message loss over
// sim.SetLinkLoss / livenet.SetLinkLoss — the gray network failure that
// never trips partition detection — reported as linkloss windows
// (GroupReport.LossSec).
//
// The gray-failure family completes the spectrum: OpGrayFail/OpGrayRestore
// put a victim into the probe-healthy, work-sick mode — it keeps acking
// liveness pings and web-tier probes while real requests error (Factor
// < 1, an error rate) or slow-walk (Factor ≥ 1, a service-time
// multiplier); on livenet the same op drops value-bearing inbound
// traffic at the transport while sub-128-byte control messages pass.
// OpLinkDelay/OpLinkDelayRestore inflate per-link latency (sim.
// SetLinkDelay / livenet.SetLinkDelay) — the congested path where
// nothing drops and nothing severs, invisible to both loss and partition
// detection. The Flap generator expands any window-opening op into
// alternating inject/restore trains (period × duty), giving the classic
// route-flap scenario in one line. Because probe-timeout detection is
// blind to all of these, the proxy additionally grades each server on
// served-traffic quality — per-server error/latency EWMAs — and evicts
// (with quarantine) on quality alone; a gray member costs a few seconds
// of degraded service instead of a whole window (ProxyStats.
// QualityEvictions; the gray scenarios run under cmd/experiment -run
// gray, with grayfail/linkdelay windows in GroupReport.GraySec/DelaySec
// and staleness folded into per-group accuracy by
// metrics.WeightedGroupAccuracy).
//
// On top of the DSL sits a generative adversarial fault search
// (internal/exp/search, cmd/experiment -run hunt): it samples random
// schedules from the grammar — weighted op mix, random selectors, times
// and factors, severing windows kept quorum-safe by construction —
// judges every run with failure oracles (fence violations, an
// availability floor, a write-wedge oracle that demands throughput
// re-sustain half the failure-free baseline after the last fault
// clears, and a transaction-atomicity oracle — on sharded deployments
// the hunt drives cross-shard transactions beside the RBE load by
// default and fails any run that loses, duplicates or half-applies
// one; the sampler also draws compound 2PC-targeted schedules that
// anchor correlated coordinator/participant crashes and partitions
// inside one prepare→commit window), delta-debugs each failure to a
// minimal event set and time
// window (search.Shrink), and pins survivors as reproducible JSON
// counterexamples under internal/exp/testdata/pinned/ — auto-replayed by
// a regression test, so every bug the search ever caught stays caught.
// The harness is itself acceptance-tested against a known-bad engine:
// reverting the stale-leader-rejoin fix behind paxos.BugStaleLeaderRejoin
// makes the hunt find the resulting write-wedge, shrink the schedule to
// the causal leader partition/heal pair, and pin a case that reproduces
// the wedge pre-fix and passes post-fix. CI runs a -short smoke per PR
// and a full scheduled hunt nightly, uploading found schedules as
// artifacts.
//
// The codebase enforces its own invariants statically: internal/analysis
// is a stdlib-only go/analysis-style suite run by cmd/analyze (standalone
// over ./... or as a go vet -vettool), wired into CI. Four passes guard
// the bug classes this repo actually shipped: detorder flags map
// iteration that reaches an order-sensitive sink (message sends,
// proposals, WAL appends, fold-order-dependent results) inside the
// deterministic packages — the exact shape of the leader-election
// replay-divergence bug — with internal/detsort.Keys as the sanctioned
// collect-and-sort idiom; walltime forbids wall-clock time and global
// math/rand there (virtual clocks and seeded internal/xrand streams
// only); walpath confines env.Storage.Append/AppendBatch to the
// group-commit walWriter in paxos/wal.go and proves every storage
// implementation completes its done callback on all control-flow paths;
// guarded checks `// guarded by <mu>` field annotations against the locks
// actually taken. Deliberate exceptions are annotated in place —
// //detorder:sorted, //walltime:live, //walpath:direct, //walpath:drops,
// //guarded:held — each with a reason, so the suite stays at zero
// findings and every suppression is a documented decision.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root package holds only the benchmark harness (bench_test.go);
// the implementation lives under internal/.
package robuststore
