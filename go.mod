module robuststore

go 1.24
