// Command resharding demonstrates live shard migration: a bookstore
// hash-partitioned across 2 Paxos groups grows to 3 groups while
// shoppers keep writing, with zero downtime. Routing is an
// epoch-versioned table (shard.RoutingTable) rather than a frozen
// hash%N: Rebalance boots the new group, drains and fences the source
// logs, streams the moving hash slices' rows through the ordered log
// (keyed snapshot export → ordered import), and publishes the next epoch
// with one atomic cutover. Afterwards the consistency audit passes on
// every replica of every group.
//
//	go run ./examples/resharding
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/livenet"
	"robuststore/internal/paxos"
	"robuststore/internal/shard"
	"robuststore/internal/tpcw"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resharding:", err)
		os.Exit(1)
	}
}

func run() error {
	cluster := livenet.New(livenet.Config{Latency: 100 * time.Microsecond})
	defer cluster.Close()

	// A 2-group sharded bookstore. The machine factory also serves the
	// group Rebalance adds later (shard index 2).
	store := shard.New(cluster, shard.Config{
		Shards:   2,
		Replicas: 3,
		Machine: func(g int) core.StateMachine {
			return tpcw.Populate(tpcw.PopConfig{Items: 500, EBs: 1, Reduction: 4, Seed: uint64(g) + 1})
		},
		Core: core.Config{
			ActionSize:         tpcw.ActionSize,
			CheckpointInterval: 2 * time.Second,
			Paxos: paxos.Config{
				HeartbeatInterval: 20 * time.Millisecond,
				LeaderTimeout:     150 * time.Millisecond,
				SweepInterval:     10 * time.Millisecond,
				BatchDelay:        time.Millisecond,
			},
		},
	})
	cluster.StartAll()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Shoppers update item rows, routed by the row's partition key —
	// exactly the keys the migration will re-home.
	var ok, errs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				item := tpcw.ItemID(w*20 + i%20 + 1)
				key := fmt.Sprintf("item/%d", item)
				_, err := store.Execute(ctx, key, tpcw.AdminUpdateAction{
					Item: item, Cost: float64(10 + i%90), Image: "i", Thumbnail: "t",
					Now: time.Now().UTC(),
				})
				if err != nil {
					errs.Add(1)
				} else {
					ok.Add(1)
				}
				time.Sleep(3 * time.Millisecond)
			}
		}()
	}

	time.Sleep(500 * time.Millisecond)
	fmt.Printf("epoch %d: %d groups serving\n", store.Epoch(), store.Shards())

	// Grow 2 → 3 live. Writes to moving slices are held (never failed)
	// for the duration of the migration window; everything else flows.
	done := make(chan error, 1)
	store.Rebalance(shard.RebalanceOptions{Done: func(err error) { done <- err }})
	if err := <-done; err != nil {
		return fmt.Errorf("rebalance: %w", err)
	}
	st := store.Migration()
	fmt.Printf("epoch %d: group %d joined, %d/%d slices moved, window %s\n",
		store.Epoch(), st.NewGroup, st.MovedSlices, st.TotalSlices, st.Window())

	time.Sleep(500 * time.Millisecond) // post-cutover traffic on 3 groups
	close(stop)
	wg.Wait()
	time.Sleep(300 * time.Millisecond) // let replicas converge
	fmt.Printf("workload: %d updates applied, %d errors\n", ok.Load(), errs.Load())

	// The consistency audit passes on every replica of every group —
	// migration moved rows, it did not corrupt them.
	for g := 0; g < store.Shards(); g++ {
		for m := 0; m < 3; m++ {
			r := store.Group(g).Replica(m)
			if r == nil || !r.Ready() {
				continue
			}
			audit := make(chan []string, 1)
			r.Inspect(func(sm core.StateMachine) {
				audit <- sm.(*tpcw.Store).VerifyConsistency()
			})
			if bad := <-audit; len(bad) > 0 {
				return fmt.Errorf("group %d replica %d inconsistent: %v", g, m, bad)
			}
		}
	}
	fmt.Println("consistency audit: all replicas of all 3 groups consistent")
	return nil
}
