// Command faultinjection runs a complete dependability experiment from
// the paper on the simulated cluster: a five-replica RobustStore under
// the TPC-W shopping workload, two overlapped crashes (§5.5), autonomous
// watchdog recoveries, and the dependability report — WIPS histogram,
// performability, accuracy, availability and autonomy.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"os"

	"robuststore/internal/exp"
	"robuststore/internal/rbe"
)

func main() {
	fmt.Println("running: 5 replicas, shopping profile, 500 MB state,")
	fmt.Println("two overlapped crashes at t=240 s and t=270 s, watchdog recovery")
	fmt.Println("(540 s measurement interval on the simulated cluster)")
	fmt.Println()

	r := exp.Run(exp.RunConfig{
		Profile: rbe.Shopping,
		Servers: 5,
		StateMB: 500,
		Fault:   exp.TwoCrashes,
		Seed:    7,
	})

	exp.PrintHistogram(os.Stdout, r)
	fmt.Println()
	fmt.Printf("failure-free AWIPS : %8.1f  (CV %.2f)\n", r.Perf.FailureFreeAWIPS, r.Perf.FailureFreeCV)
	fmt.Printf("recovery AWIPS     : %8.1f  (CV %.2f)\n", r.Perf.RecoveryAWIPS, r.Perf.RecoveryCV)
	fmt.Printf("performance var.   : %8.1f %%\n", r.Perf.PV)
	fmt.Printf("accuracy           : %8.3f %%   (%d errors / %d requests)\n", r.Accuracy, r.Errors, r.Total)
	fmt.Printf("availability       : %8.5f\n", r.Availability)
	fmt.Printf("autonomy           : %8.2f interventions/fault (%d faults)\n", r.Autonomy, r.Faults)
	for i := range r.CrashSec {
		rec := -1.0
		if i < len(r.RecoverySec) {
			rec = r.RecoverySec[i]
		}
		fmt.Printf("crash %d at t=%.0fs, operational again at t=%.0fs\n",
			i+1, r.CrashSec[i], rec)
	}
	fmt.Printf("state: %.0f MB -> %.0f MB\n", r.InitialStateMB, r.FinalStateMB)
}
