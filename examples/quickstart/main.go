// Command quickstart is the smallest end-to-end Treplica program: a
// replicated counter on three live replicas. It demonstrates the state
// machine abstraction of paper §2 — deterministic actions, totally
// ordered execution on every replica, and transparent crash recovery.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/livenet"
	"robuststore/internal/paxos"
)

// counterMachine is the application: a black box with deterministic
// transitions (core.StateMachine).
type counterMachine struct {
	total int64
}

func (m *counterMachine) Execute(action any) any {
	if d, ok := action.(int64); ok {
		m.total += d
	}
	return m.total
}

func (m *counterMachine) Snapshot() (any, int64) { return m.total, 64 }

func (m *counterMachine) Restore(data any) {
	if v, ok := data.(int64); ok {
		m.total = v
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const replicas = 3
	cluster := livenet.New(livenet.Config{Latency: 200 * time.Microsecond})
	defer cluster.Close()

	machines := make([]*counterMachine, replicas)
	reps := make([]*core.Replica, replicas)
	for i := 0; i < replicas; i++ {
		idx := i
		cluster.AddNode(func() env.Node {
			r := core.NewReplica(core.Config{
				Machine: func() core.StateMachine {
					m := &counterMachine{}
					machines[idx] = m
					return m
				},
				CheckpointInterval: time.Second,
				Paxos: paxos.Config{
					HeartbeatInterval: 20 * time.Millisecond,
					LeaderTimeout:     150 * time.Millisecond,
					SweepInterval:     10 * time.Millisecond,
					BatchDelay:        time.Millisecond,
				},
			})
			reps[idx] = r
			return r
		})
	}
	cluster.StartAll()
	awaitLeader(reps[0])

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Actions submitted at any replica execute in the same total order
	// on all of them.
	for i := int64(1); i <= 5; i++ {
		result, err := reps[int(i)%replicas].Execute(ctx, i*10)
		if err != nil {
			return fmt.Errorf("execute: %w", err)
		}
		fmt.Printf("add %3d -> counter = %v\n", i*10, result)
	}

	// Crash replica 2; the majority keeps the service running.
	fmt.Println("crashing replica 2 ...")
	cluster.Crash(2)
	if _, err := reps[0].Execute(ctx, 1000); err != nil {
		return fmt.Errorf("execute during outage: %w", err)
	}
	fmt.Println("added 1000 while replica 2 was down")

	// Restart it: Treplica recovers the state from the local checkpoint
	// plus the learned log suffix — the application only implements
	// Snapshot/Restore (paper §2: "all that needs to be done is to call
	// getState()").
	cluster.Restart(2)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := machines[2]; m != nil && reps[2].Ready() && reps[2].Recovered() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Read each replica's local state.
	time.Sleep(300 * time.Millisecond)
	for i := 0; i < replicas; i++ {
		fmt.Printf("replica %d sees counter = %d\n", i, machines[i].total)
	}
	if machines[2].total != machines[0].total {
		return fmt.Errorf("replica 2 diverged: %d != %d", machines[2].total, machines[0].total)
	}
	fmt.Println("recovered replica converged — done")
	return nil
}

func awaitLeader(r *core.Replica) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.Ready() && r.HasLeader() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
