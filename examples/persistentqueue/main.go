// Command persistentqueue demonstrates Treplica's other programming
// abstraction (paper §2): the asynchronous persistent queue. Producers on
// different replicas enqueue asynchronously; every replica dequeues the
// same totally ordered sequence, and a crashed replica resumes its queue
// after recovery without missing enqueues.
//
//	go run ./examples/persistentqueue
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/livenet"
	"robuststore/internal/paxos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "persistentqueue:", err)
		os.Exit(1)
	}
}

func run() error {
	const replicas = 3
	cluster := livenet.New(livenet.Config{Latency: 200 * time.Microsecond})
	defer cluster.Close()

	queues := make([]*core.Queue, replicas)
	reps := make([]*core.Replica, replicas)
	for i := 0; i < replicas; i++ {
		idx := i
		cluster.AddNode(func() env.Node {
			q, r := core.NewQueue(core.Config{
				CheckpointInterval: time.Second,
				Paxos: paxos.Config{
					HeartbeatInterval: 20 * time.Millisecond,
					LeaderTimeout:     150 * time.Millisecond,
					SweepInterval:     10 * time.Millisecond,
					BatchDelay:        time.Millisecond,
				},
			})
			queues[idx] = q
			reps[idx] = r
			return r
		})
	}
	cluster.StartAll()

	// Wait for the queue service to come up.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reps[0].Ready() && reps[0].HasLeader() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// Producers on all three replicas; Enqueue is asynchronous.
	for i := 1; i <= 9; i++ {
		queues[i%replicas].Enqueue(fmt.Sprintf("job-%d", i))
	}

	// Every replica observes the same total order.
	fmt.Println("dequeue order per replica:")
	var reference []string
	for r := 0; r < replicas; r++ {
		var got []string
		for len(got) < 9 {
			item, err := queues[r].Dequeue(ctx)
			if err != nil {
				return fmt.Errorf("replica %d dequeue: %w", r, err)
			}
			got = append(got, item.(string))
		}
		fmt.Printf("  replica %d: %v\n", r, got)
		if reference == nil {
			reference = got
			continue
		}
		for i := range got {
			if got[i] != reference[i] {
				return fmt.Errorf("total order violated at %d: %v vs %v", i, got, reference)
			}
		}
	}

	// Crash a replica, keep producing, recover it: the queue preserves
	// its state and the recovered replica has not missed any enqueues
	// (paper §2).
	fmt.Println("crashing replica 2, enqueueing 3 more jobs ...")
	cluster.Crash(2)
	for i := 10; i <= 12; i++ {
		queues[i%2].Enqueue(fmt.Sprintf("job-%d", i))
	}
	// Drain them on a live replica.
	for i := 0; i < 3; i++ {
		if _, err := queues[0].Dequeue(ctx); err != nil {
			return err
		}
	}
	cluster.Restart(2)

	// The recovered replica resumes from its last checkpoint: items it
	// dequeued after that checkpoint are re-delivered (at-least-once),
	// and — the paper's guarantee — no enqueue made while it was down
	// is ever missed. Drain until the three jobs enqueued during the
	// outage appear.
	want := map[string]bool{"job-10": true, "job-11": true, "job-12": true}
	var recovered []string
	for len(want) > 0 {
		item, err := queues[2].Dequeue(ctx)
		if err != nil {
			return fmt.Errorf("recovered replica dequeue: %w", err)
		}
		job := item.(string)
		recovered = append(recovered, job)
		delete(want, job)
	}
	fmt.Printf("replica 2 after recovery dequeued: %v\n", recovered)
	fmt.Println("jobs 10-12, enqueued during the outage, all arrived — done")
	return nil
}
