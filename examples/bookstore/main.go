// Command bookstore runs RobustStore itself — the TPC-W on-line bookstore
// replicated with Treplica (paper §4) — on three live replicas: it browses
// the catalog, fills a shopping cart, confirms a purchase, then crashes
// and recovers a replica and shows that the bookstore state (orders,
// stock, best sellers) converged everywhere.
//
//	go run ./examples/bookstore
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"robuststore/internal/core"
	"robuststore/internal/env"
	"robuststore/internal/livenet"
	"robuststore/internal/paxos"
	"robuststore/internal/tpcw"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bookstore:", err)
		os.Exit(1)
	}
}

func run() error {
	const replicas = 3
	cluster := livenet.New(livenet.Config{Latency: 200 * time.Microsecond})
	defer cluster.Close()

	stores := make([]*tpcw.Store, replicas)
	reps := make([]*core.Replica, replicas)
	for i := 0; i < replicas; i++ {
		idx := i
		cluster.AddNode(func() env.Node {
			r := core.NewReplica(core.Config{
				// Every incarnation starts from the same deterministic
				// TPC-W population (paper §5.1), then recovers from its
				// checkpoint.
				Machine: func() core.StateMachine {
					s := tpcw.Populate(tpcw.PopConfig{
						Items: 1000, EBs: 1, Reduction: 4, Seed: 42,
					})
					stores[idx] = s
					return s
				},
				ActionSize:         tpcw.ActionSize,
				CheckpointInterval: 2 * time.Second,
				Paxos: paxos.Config{
					HeartbeatInterval: 20 * time.Millisecond,
					LeaderTimeout:     150 * time.Millisecond,
					SweepInterval:     10 * time.Millisecond,
					BatchDelay:        time.Millisecond,
				},
			})
			reps[idx] = r
			return r
		})
	}
	cluster.StartAll()
	awaitLeader(reps[0])

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	now := time.Now().UTC()

	// Browse locally (reads need no total order — paper §5.2).
	info := stores[0].Info()
	fmt.Printf("catalog: %d items, %d customers\n", info.Items, info.Customers)
	hits := stores[0].DoSearch(tpcw.SearchByTitle, info.TitleTokens[0])
	fmt.Printf("title search %q: %d hits\n", info.TitleTokens[0], len(hits))

	// Fill a cart through the replicated facade. Note how timestamps
	// travel inside the action — non-determinism is resolved before
	// submission (paper §4, task II).
	res, err := reps[0].Execute(ctx, tpcw.CartUpdateAction{
		AddItem: hits[0], AddQty: 2, Now: now,
	})
	if err != nil {
		return err
	}
	cart := res.(tpcw.CartResult).Cart
	fmt.Printf("cart %d holds %d line(s)\n", cart.ID, len(cart.Lines))

	itemBefore, _ := stores[0].GetBook(hits[0])

	// Confirm the purchase on a different replica: the queue's total
	// order makes the interleaving irrelevant.
	res, err = reps[1].Execute(ctx, tpcw.BuyConfirmAction{
		Cart: cart.ID, Customer: 1,
		CCType: "VISA", CCNum: "4111111111111111", CCName: "Jane Doe",
		CCExpire: now.AddDate(2, 0, 0), ShipType: "AIR",
		ShipDate: now.AddDate(0, 0, 3), Now: now,
	})
	if err != nil {
		return err
	}
	buy := res.(tpcw.BuyConfirmResult)
	if buy.Err != "" {
		return fmt.Errorf("purchase failed: %s", buy.Err)
	}
	fmt.Printf("order %d confirmed, total $%.2f\n", buy.Order, buy.Total)

	// Crash replica 2, keep selling, then let it recover.
	cluster.Crash(2)
	res, err = reps[0].Execute(ctx, tpcw.CartUpdateAction{
		AddItem: hits[0], AddQty: 1, Now: now,
	})
	if err != nil {
		return err
	}
	cart2 := res.(tpcw.CartResult).Cart
	if _, err = reps[0].Execute(ctx, tpcw.BuyConfirmAction{
		Cart: cart2.ID, Customer: 2, ShipDate: now.AddDate(0, 0, 2), Now: now,
	}); err != nil {
		return err
	}
	fmt.Println("sold another copy while replica 2 was down")
	cluster.Restart(2)

	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if reps[2].Ready() && reps[2].Recovered() &&
			reps[2].LastApplied() >= reps[0].LastApplied() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)

	// Every replica must agree on stock and order history.
	for i := 0; i < replicas; i++ {
		item, _ := stores[i].GetBook(hits[0])
		_, ok := stores[i].GetOrder(buy.Order)
		fmt.Printf("replica %d: stock(%d)=%d, order %d present=%v\n",
			i, hits[0], item.Stock, buy.Order, ok)
		if bad := stores[i].VerifyConsistency(); len(bad) > 0 {
			return fmt.Errorf("replica %d inconsistent: %v", i, bad)
		}
	}
	after0, _ := stores[0].GetBook(hits[0])
	after2, _ := stores[2].GetBook(hits[0])
	if after0.Stock != after2.Stock {
		return fmt.Errorf("stock diverged: %d vs %d", after0.Stock, after2.Stock)
	}
	_ = itemBefore
	fmt.Println("all replicas consistent — done")
	return nil
}

func awaitLeader(r *core.Replica) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.Ready() && r.HasLeader() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
