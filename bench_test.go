// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5). Each benchmark regenerates the experiment on the
// simulated cluster and prints the same rows/series the paper reports;
// key scalars are also attached as benchmark metrics.
//
// Experiments are memoized per process, so benchmarks that share runs
// (the paper's Figure 5 plots the Table 1 runs) pay for them once. Run
// with:
//
//	go test -bench=. -benchmem
package robuststore_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"robuststore/internal/exp"
	"robuststore/internal/rbe"
	"robuststore/internal/shard"
)

// benchSeed fixes every experiment; results are exactly reproducible.
const benchSeed = 1

// BenchmarkFigure3Speedup regenerates Figure 3: saturation WIPS/WIRT for
// 4-12 replicas under the three TPC-W profiles, with S_k speedups.
func BenchmarkFigure3Speedup(b *testing.B) {
	var r exp.SpeedupResult
	for i := 0; i < b.N; i++ {
		r = exp.Speedup(benchSeed)
	}
	exp.PrintSpeedup(os.Stdout, r)
	last := func(p rbe.Profile) exp.ScalePoint {
		pts := r.Points[p]
		return pts[len(pts)-1]
	}
	b.ReportMetric(last(rbe.Browsing).Speedup, "S12_browsing")
	b.ReportMetric(last(rbe.Shopping).Speedup, "S12_shopping")
	b.ReportMetric(last(rbe.Ordering).Speedup, "S12_ordering")
}

// BenchmarkFigure4Scaleup regenerates Figure 4: WIPS/WIRT at 1000 offered
// WIPS for 4-12 replicas, with regression fits and the WIPS-WIRT r².
func BenchmarkFigure4Scaleup(b *testing.B) {
	var r exp.ScaleupResult
	for i := 0; i < b.N; i++ {
		r = exp.Scaleup(benchSeed)
	}
	exp.PrintScaleup(os.Stdout, r)
	b.ReportMetric(r.Correlation[rbe.Shopping], "r2_shopping")
	b.ReportMetric(r.Correlation[rbe.Ordering], "r2_ordering")
}

// BenchmarkFigure5OneCrashHistogram regenerates Figure 5: per-second WIPS
// of a five-replica RobustStore with one crash at t=270 s, per profile.
func BenchmarkFigure5OneCrashHistogram(b *testing.B) {
	var m map[string]exp.RunResult
	for i := 0; i < b.N; i++ {
		m = exp.FaultMatrix(exp.OneCrash, benchSeed)
	}
	for _, profile := range rbe.Profiles {
		exp.PrintHistogram(os.Stdout, m["5/"+profile.String()[:1]])
	}
	b.ReportMetric(m["5/o"].Perf.PV, "PV_5o_pct")
}

// BenchmarkFigure6RecoveryTimes regenerates Figure 6: one-crash recovery
// time for {5,8} replicas x 3 profiles x {300,500,700} MB states.
func BenchmarkFigure6RecoveryTimes(b *testing.B) {
	var pts []exp.RecoveryTimePoint
	for i := 0; i < b.N; i++ {
		pts = exp.RecoveryTimes(benchSeed)
	}
	exp.PrintRecoveryTimes(os.Stdout, pts)
	for _, p := range pts {
		if p.Servers == 5 && p.Profile == rbe.Browsing && p.StateMB == 500 {
			b.ReportMetric(p.RecoverySec, "recovery_5b_500MB_s")
		}
	}
}

// BenchmarkTable1OneCrashPerformability regenerates Table 1.
func BenchmarkTable1OneCrashPerformability(b *testing.B) {
	var m map[string]exp.RunResult
	for i := 0; i < b.N; i++ {
		m = exp.FaultMatrix(exp.OneCrash, benchSeed)
	}
	exp.PrintPerformability(os.Stdout, "Table 1 — One failure: performability", m)
	b.ReportMetric(m["5/s"].Perf.FailureFreeAWIPS, "ffAWIPS_5s")
	b.ReportMetric(m["5/s"].Perf.PV, "PV_5s_pct")
}

// BenchmarkTable2OneCrashAccuracy regenerates Table 2.
func BenchmarkTable2OneCrashAccuracy(b *testing.B) {
	var m map[string]exp.RunResult
	for i := 0; i < b.N; i++ {
		m = exp.FaultMatrix(exp.OneCrash, benchSeed)
	}
	exp.PrintAccuracy(os.Stdout, "Table 2 — One failure: accuracy (%)", m)
	exp.PrintDependability(os.Stdout, "One failure: availability/autonomy", m)
	b.ReportMetric(m["5/s"].Accuracy, "accuracy_5s_pct")
}

// BenchmarkFigure7TwoCrashHistogram regenerates Figure 7: two overlapped
// crashes (t=240 s and t=270 s) on five replicas.
func BenchmarkFigure7TwoCrashHistogram(b *testing.B) {
	var m map[string]exp.RunResult
	for i := 0; i < b.N; i++ {
		m = exp.FaultMatrix(exp.TwoCrashes, benchSeed)
	}
	for _, profile := range rbe.Profiles {
		exp.PrintHistogram(os.Stdout, m["5/"+profile.String()[:1]])
	}
	b.ReportMetric(m["5/b"].Perf.PV, "PV_5b_pct")
}

// BenchmarkTable3TwoCrashPerformability regenerates Table 3.
func BenchmarkTable3TwoCrashPerformability(b *testing.B) {
	var m map[string]exp.RunResult
	for i := 0; i < b.N; i++ {
		m = exp.FaultMatrix(exp.TwoCrashes, benchSeed)
	}
	exp.PrintPerformability(os.Stdout, "Table 3 — Two overlapped crashes: performability", m)
	b.ReportMetric(m["5/s"].Perf.PV, "PV_5s_pct")
}

// BenchmarkTable4TwoCrashAccuracy regenerates Table 4.
func BenchmarkTable4TwoCrashAccuracy(b *testing.B) {
	var m map[string]exp.RunResult
	for i := 0; i < b.N; i++ {
		m = exp.FaultMatrix(exp.TwoCrashes, benchSeed)
	}
	exp.PrintAccuracy(os.Stdout, "Table 4 — Two overlapped crashes: accuracy (%)", m)
	exp.PrintDependability(os.Stdout, "Two crashes: availability/autonomy", m)
	b.ReportMetric(m["5/o"].Accuracy, "accuracy_5o_pct")
}

// BenchmarkFigure8DelayedRecoveryHistogram regenerates Figure 8: both
// replicas crash at t=240 s; one recovers autonomously, the other by a
// manual intervention at t=390 s.
func BenchmarkFigure8DelayedRecoveryHistogram(b *testing.B) {
	var m map[string]exp.RunResult
	for i := 0; i < b.N; i++ {
		m = exp.FaultMatrix(exp.DelayedRecovery, benchSeed)
	}
	for _, profile := range rbe.Profiles {
		exp.PrintHistogram(os.Stdout, m["5/"+profile.String()[:1]])
	}
	b.ReportMetric(m["5/s"].PerfR2.PV, "PV_R2_5s_pct")
}

// BenchmarkTable5DelayedRecoveryPerformability regenerates Table 5.
func BenchmarkTable5DelayedRecoveryPerformability(b *testing.B) {
	var m map[string]exp.RunResult
	for i := 0; i < b.N; i++ {
		m = exp.FaultMatrix(exp.DelayedRecovery, benchSeed)
	}
	exp.PrintDelayedPerformability(os.Stdout, m)
	b.ReportMetric(m["5/s"].Perf.PV, "PV_R1_5s_pct")
}

// BenchmarkTable6DelayedRecoveryAccuracy regenerates Table 6 plus the
// autonomy measure (one manual intervention out of two faults).
func BenchmarkTable6DelayedRecoveryAccuracy(b *testing.B) {
	var m map[string]exp.RunResult
	for i := 0; i < b.N; i++ {
		m = exp.FaultMatrix(exp.DelayedRecovery, benchSeed)
	}
	exp.PrintAccuracy(os.Stdout, "Table 6 — Delayed recovery: accuracy (%)", m)
	exp.PrintDependability(os.Stdout, "Delayed recovery: availability/autonomy", m)
	b.ReportMetric(m["5/s"].Autonomy, "autonomy")
}

// BenchmarkShardScaling measures the throughput-vs-shard-count curve of
// the hash-partitioned store (internal/shard): aggregate committed
// actions/sec under the same offered load for 1, 2 and 4 independent
// Paxos groups. This is the scaling dimension past the paper's
// single-group design; the 4-vs-1 ratio is the headline metric (≥1.5×
// required, ~2-3× typical: one group saturates its WAL group-commit
// pipeline well below the offered rate).
func BenchmarkShardScaling(b *testing.B) {
	counts := []int{1, 2, 4}
	results := make([]shard.ThroughputResult, len(counts))
	for i := 0; i < b.N; i++ {
		for j, n := range counts {
			results[j] = shard.MeasureThroughput(shard.ThroughputConfig{
				Shards: n, Seed: benchSeed,
			})
		}
	}
	fmt.Printf("Shard scaling — committed actions/sec at %d offered actions/sec\n",
		results[0].Offered)
	for _, r := range results {
		fmt.Printf("  %d shard(s): %8.0f actions/sec  (per shard %v)\n",
			r.Shards, r.PerSec, r.PerShard)
	}
	b.ReportMetric(results[0].PerSec, "aps_1shard")
	b.ReportMetric(results[1].PerSec, "aps_2shards")
	b.ReportMetric(results[2].PerSec, "aps_4shards")
	b.ReportMetric(results[2].PerSec/results[0].PerSec, "speedup_4v1")
}

// BenchmarkShardedRecovery tracks recovery behaviour as the deployment
// fans out across Paxos groups: the member-every-group faultload (one
// replica of every group crashed simultaneously) at 1, 2 and 4 shards,
// reporting mean recovery time, worst-group availability and aggregate
// throughput. Recovery time should stay roughly flat with shard count
// (each group recovers independently), which is the dependability story
// behind the shard layer.
func BenchmarkShardedRecovery(b *testing.B) {
	counts := []int{1, 2, 4}
	var pts []exp.ShardedRecoveryPoint
	for i := 0; i < b.N; i++ {
		pts = exp.ShardedRecoveryCurve(benchSeed, counts)
	}
	exp.PrintShardedRecovery(os.Stdout, pts)
	for _, p := range pts {
		b.ReportMetric(p.MeanRecoverySec, fmt.Sprintf("rec_%dshard_s", p.Shards))
		b.ReportMetric(p.WorstGroupAvail, fmt.Sprintf("avail_%dshard", p.Shards))
	}
}

// BenchmarkCheckpointRecovery tracks the incremental-checkpoint pipeline
// against monolithic full-state checkpoints at the paper's default 60 s
// interval and 500 MB state: one-crash recovery time, per-checkpoint and
// per-second checkpoint disk traffic, and throughput — plus the sustained
// ordered-actions/s of the sharded store at 1 and 4 groups. The results
// are also written to BENCH_checkpoint.json so the perf trajectory is
// machine-readable from this PR on.
func BenchmarkCheckpointRecovery(b *testing.B) {
	var pts []exp.CheckpointPoint
	for i := 0; i < b.N; i++ {
		pts = exp.CheckpointCurve(exp.CheckpointCurveConfig{
			Servers: 3, StateMB: 500, Browsers: 300,
			Measure: 150 * time.Second, Intervals: []int{60}, Seed: 3,
		})
	}
	exp.PrintCheckpointCurve(os.Stdout, pts)
	full, incr := pts[0], pts[1]
	t1 := shard.MeasureThroughput(shard.ThroughputConfig{Shards: 1, Seed: benchSeed})
	t4 := shard.MeasureThroughput(shard.ThroughputConfig{Shards: 4, Seed: benchSeed})

	report := struct {
		RecoverySecFull60 float64 `json:"recovery_sec_full_60s"`
		RecoverySecIncr60 float64 `json:"recovery_sec_incremental_60s"`
		PerCkptMBFull     float64 `json:"mb_per_checkpoint_full"`
		PerCkptMBIncr     float64 `json:"mb_per_checkpoint_incremental"`
		CkptMBPerSecFull  float64 `json:"checkpoint_mb_per_sec_full"`
		CkptMBPerSecIncr  float64 `json:"checkpoint_mb_per_sec_incremental"`
		AWIPSFull         float64 `json:"awips_full"`
		AWIPSIncr         float64 `json:"awips_incremental"`
		ActionsPerSec1    float64 `json:"actions_per_sec_1shard"`
		ActionsPerSec4    float64 `json:"actions_per_sec_4shards"`
	}{
		RecoverySecFull60: full.RecoverySec,
		RecoverySecIncr60: incr.RecoverySec,
		PerCkptMBFull:     full.PerCkptMB,
		PerCkptMBIncr:     incr.PerCkptMB,
		CkptMBPerSecFull:  full.CkptMBPerSec,
		CkptMBPerSecIncr:  incr.CkptMBPerSec,
		AWIPSFull:         full.AWIPS,
		AWIPSIncr:         incr.AWIPS,
		ActionsPerSec1:    t1.PerSec,
		ActionsPerSec4:    t4.PerSec,
	}
	if data, err := json.MarshalIndent(report, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_checkpoint.json", append(data, '\n'), 0o644); err != nil {
			b.Logf("BENCH_checkpoint.json not written: %v", err)
		}
	}
	b.ReportMetric(full.RecoverySec, "recovery_full_s")
	b.ReportMetric(incr.RecoverySec, "recovery_incr_s")
	b.ReportMetric(full.PerCkptMB, "MB_per_ckpt_full")
	b.ReportMetric(incr.PerCkptMB, "MB_per_ckpt_incr")
	b.ReportMetric(t1.PerSec, "aps_1shard")
	b.ReportMetric(t4.PerSec, "aps_4shards")
}

// BenchmarkPartitionRecovery measures the leader-isolation faultload on
// the reference deployment: how long until the group detects the silent
// leader and throughput is back (failover), how long to reabsorb the
// stale ex-leader after the network heals, and the AWIPS level during and
// after the partition window. Results are written to BENCH_partition.json
// so the partition-recovery trajectory is machine-readable.
func BenchmarkPartitionRecovery(b *testing.B) {
	var pt exp.PartitionBenchPoint
	for i := 0; i < b.N; i++ {
		pt = exp.PartitionRecoveryBench(benchSeed)
	}
	exp.PrintPartitionBench(os.Stdout, pt)
	report := struct {
		DetectSec   float64 `json:"detect_failover_sec"`
		ReabsorbSec float64 `json:"post_heal_reabsorb_sec"`
		FFAWIPS     float64 `json:"awips_failure_free"`
		WindowAWIPS float64 `json:"awips_during_window"`
		PostAWIPS   float64 `json:"awips_after_heal"`
	}{pt.DetectSec, pt.ReabsorbSec, pt.FFAWIPS, pt.WindowAWIPS, pt.PostAWIPS}
	if data, err := json.MarshalIndent(report, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_partition.json", append(data, '\n'), 0o644); err != nil {
			b.Logf("BENCH_partition.json not written: %v", err)
		}
	}
	b.ReportMetric(pt.DetectSec, "detect_s")
	b.ReportMetric(pt.ReabsorbSec, "reabsorb_s")
	b.ReportMetric(pt.WindowAWIPS, "window_WIPS")
	b.ReportMetric(pt.PostAWIPS, "post_WIPS")
}

// BenchmarkReadScale measures the read scale-out tier: learner-backed
// readers added to a 3-voter group under the saturated Browsing profile,
// reporting read actions/s against read-serving node count with the
// staleness accounting (fence waits, TooStale fallbacks) beside it. The
// headline metric is the read-throughput ratio of 3 voters + 3 learners
// over 3 voters alone (≥2× required: readers carry no write quorum duty,
// so each one adds a nearly full node of read capacity). Results are
// written to BENCH_readscale.json.
func BenchmarkReadScale(b *testing.B) {
	var pts []exp.ReadScalePoint
	for i := 0; i < b.N; i++ {
		pts = exp.ReadScale(exp.ReadScaleConfig{Seed: benchSeed, Counts: []int{0, 3}})
	}
	exp.PrintReadScale(os.Stdout, pts)
	base, scaled := pts[0], pts[len(pts)-1]
	speedup := scaled.ReadsPerSec / base.ReadsPerSec
	report := struct {
		Points      []exp.ReadScalePoint `json:"points"`
		ReadSpeedup float64              `json:"read_speedup_6v3"`
	}{pts, speedup}
	if data, err := json.MarshalIndent(report, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_readscale.json", append(data, '\n'), 0o644); err != nil {
			b.Logf("BENCH_readscale.json not written: %v", err)
		}
	}
	b.ReportMetric(base.ReadsPerSec, "reads_per_sec_3nodes")
	b.ReportMetric(scaled.ReadsPerSec, "reads_per_sec_6nodes")
	b.ReportMetric(speedup, "read_speedup_6v3")
	if speedup < 2 {
		b.Errorf("read speedup 3v→3v+3l = %.2f×, want ≥2×", speedup)
	}
}

// BenchmarkTxn measures cross-shard transactions (2PC over the Paxos
// groups) under the transaction-window faultloads: coordinator crash
// between prepare and commit, participant group severed, participant
// crash holding prepared branches. Each run drives gift purchases and
// inventory sweeps at 2 txn/s beside the RBE load and audits atomicity
// at run end; any lost, duplicated or half-applied transaction fails the
// benchmark. Results are written to BENCH_txn.json.
func BenchmarkTxn(b *testing.B) {
	var rs []exp.RunResult
	for i := 0; i < b.N; i++ {
		rs = exp.TxnSuite(exp.ShardedSuiteConfig{Seed: benchSeed})
	}
	type row struct {
		Scenario    string  `json:"scenario"`
		Issued      int     `json:"issued"`
		CrossShard  int     `json:"cross_shard"`
		Committed   int     `json:"committed"`
		Aborted     int     `json:"aborted"`
		Unresolved  int     `json:"unresolved"`
		Violations  int     `json:"violations"`
		BlockedSec  float64 `json:"blocked_sec"`
		AWIPS       float64 `json:"awips"`
		Availabilty float64 `json:"availability"`
	}
	report := struct {
		Rows []row `json:"rows"`
	}{}
	committed, violations := 0, 0
	var blocked float64
	for _, r := range rs {
		exp.PrintTxnReport(os.Stdout, r)
		fmt.Println()
		var blk float64
		for _, g := range r.PerGroup {
			blk += g.TxnBlockedSec
		}
		report.Rows = append(report.Rows, row{
			Scenario:    r.Cfg.Faultload.Name,
			Issued:      r.Txn.Issued,
			CrossShard:  r.Txn.CrossShard,
			Committed:   r.Txn.Committed,
			Aborted:     r.Txn.Aborted,
			Unresolved:  r.Txn.Unresolved,
			Violations:  r.Txn.Violations(),
			BlockedSec:  blk,
			AWIPS:       r.AWIPS,
			Availabilty: r.Availability,
		})
		committed += r.Txn.Committed
		violations += r.Txn.Violations()
		blocked += blk
	}
	if data, err := json.MarshalIndent(report, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_txn.json", append(data, '\n'), 0o644); err != nil {
			b.Logf("BENCH_txn.json not written: %v", err)
		}
	}
	b.ReportMetric(float64(committed), "txns_committed")
	b.ReportMetric(blocked, "key_blocked_s")
	if violations > 0 {
		b.Errorf("cross-shard atomicity: %d violation(s) across the faultload suite", violations)
	}
}

// BenchmarkAblationFastVsClassicPaxos compares Treplica's Fast Paxos mode
// against classic-only Paxos under the write-heavy ordering profile — the
// protocol choice §2 motivates.
func BenchmarkAblationFastVsClassicPaxos(b *testing.B) {
	var a exp.AblationResult
	for i := 0; i < b.N; i++ {
		a = exp.AblationFastPaxos(benchSeed)
	}
	exp.PrintAblation(os.Stdout, a)
	b.ReportMetric(a.BaselineWIPS, "fast_WIPS")
	b.ReportMetric(a.VariantWIPS, "classic_WIPS")
}

// BenchmarkAblationParallelRecovery compares Treplica's parallel recovery
// (checkpoint load overlapped with suffix learning, §5.4) against a
// sequential variant, on the recovery-time metric.
func BenchmarkAblationParallelRecovery(b *testing.B) {
	var par, seq exp.RunResult
	for i := 0; i < b.N; i++ {
		par = exp.Run(exp.RunConfig{Profile: rbe.Ordering, Servers: 5, StateMB: 500,
			Fault: exp.OneCrash, Seed: benchSeed})
		seq = exp.Run(exp.RunConfig{Profile: rbe.Ordering, Servers: 5, StateMB: 500,
			Fault: exp.OneCrash, Seed: benchSeed, SeqRec: true})
	}
	if len(par.RecoveryDur) > 0 {
		b.ReportMetric(par.RecoveryDur[0], "parallel_recovery_s")
	}
	if len(seq.RecoveryDur) > 0 {
		b.ReportMetric(seq.RecoveryDur[0], "sequential_recovery_s")
	}
}

// BenchmarkAblationBatching compares group-commit batching against
// one-command-per-consensus-value under the ordering profile.
func BenchmarkAblationBatching(b *testing.B) {
	var batched, unbatched exp.RunResult
	for i := 0; i < b.N; i++ {
		batched = exp.Run(exp.RunConfig{Profile: rbe.Ordering, Servers: 5, StateMB: 300,
			Measure: 150 * time.Second, Seed: benchSeed})
		unbatched = exp.Run(exp.RunConfig{Profile: rbe.Ordering, Servers: 5, StateMB: 300,
			Measure: 150 * time.Second, Seed: benchSeed, NoBatch: true})
	}
	b.ReportMetric(batched.AWIPS, "batched_WIPS")
	b.ReportMetric(unbatched.AWIPS, "unbatched_WIPS")
	b.ReportMetric(batched.WIRTms, "batched_WIRT_ms")
	b.ReportMetric(unbatched.WIRTms, "unbatched_WIRT_ms")
}

// BenchmarkBatching tracks the WAL group-commit matrix: committed
// actions/s against SyncMode × consensus pipeline depth on the default
// simulated disk, at 1 and 4 shards, with the pre-group-commit engine
// (reference pipeline, one Storage.Append per WAL record) as the baseline
// row. Results are written to BENCH_batching.json; the headline metric is
// the best single-group speedup over that baseline.
func BenchmarkBatching(b *testing.B) {
	var r exp.BatchingResult
	for i := 0; i < b.N; i++ {
		r = exp.Batching(exp.BatchingConfig{Seed: benchSeed})
	}
	exp.PrintBatching(os.Stdout, r)
	report := struct {
		Points             []exp.BatchingPoint `json:"points"`
		SingleGroupSpeedup float64             `json:"single_group_speedup"`
	}{r.Points, r.SingleGroupSpeedup()}
	if data, err := json.MarshalIndent(report, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_batching.json", append(data, '\n'), 0o644); err != nil {
			b.Logf("BENCH_batching.json not written: %v", err)
		}
	}
	var base1, best1 float64
	for _, pt := range r.Points {
		if pt.Shards != 1 {
			continue
		}
		if pt.Baseline {
			base1 = pt.PerSec
		} else if pt.PerSec > best1 {
			best1 = pt.PerSec
		}
	}
	b.ReportMetric(base1, "aps_1shard_base")
	b.ReportMetric(best1, "aps_1shard_best")
	b.ReportMetric(r.SingleGroupSpeedup(), "speedup_1shard")
}
